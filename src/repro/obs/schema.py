"""The documented metrics schema — the single source of truth.

Every span, instant, gauge, and counter name the observability layer
emits is registered here with its kind, emitting component, and unit.
``docs/OBSERVABILITY.md`` renders this catalogue for humans;
``validate_chrome_trace`` checks an exported trace against it (used by
``benchmarks/bench_smoke_obs.py`` and the unit tests), so schema and
implementation cannot drift apart silently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List

SPAN = "span"
INSTANT = "instant"
GAUGE = "gauge"
COUNTER = "counter"


@dataclass(frozen=True)
class MetricSpec:
    """What one emitted name means."""

    name: str
    kind: str  # span | instant | gauge | counter
    component: str  # which module/class emits it
    unit: str
    description: str


def _spec(name: str, kind: str, component: str, unit: str, description: str) -> MetricSpec:
    return MetricSpec(name, kind, component, unit, description)


_SPECS: List[MetricSpec] = [
    # -- transaction lifecycle (client's view) ---------------------------------
    _spec(
        "client/txn",
        SPAN,
        "core.client.Client",
        "s",
        "Whole transaction lifecycle: submit to commit/failure. "
        "attrs: kind (modify|read), outcome (committed|failed).",
    ),
    _spec(
        "client/endorse_wait",
        SPAN,
        "core.client.Client",
        "s",
        "One endorsement attempt: proposals sent to quorum reached or "
        "proposal timeout. attrs: attempt (0-based retry index).",
    ),
    _spec(
        "client/commit_wait",
        SPAN,
        "core.client.Client",
        "s",
        "Commit phase: transaction sent to q receipts or commit timeout.",
    ),
    _spec(
        "client/read_wait",
        SPAN,
        "core.client.Client",
        "s",
        "Read transaction: requests sent to q responses or read timeout.",
    ),
    _spec("txn/submitted", INSTANT, "core.client.Client", "-", "Client submitted a transaction."),
    _spec("txn/committed", INSTANT, "core.client.Client", "-", "Transaction successfully committed."),
    _spec(
        "txn/failed",
        INSTANT,
        "core.client.Client",
        "-",
        "Transaction failed. attrs: reason.",
    ),
    # -- OrderlessChain organization phases -----------------------------------------
    _spec(
        "orderlesschain/P1/Execution",
        SPAN,
        "core.organization.Organization",
        "s",
        "Phase 1 at one organization: proposal arrival to endorsement "
        "send (contract execution + CPU queue + CPU service).",
    ),
    _spec(
        "orderlesschain/P1/Queue",
        SPAN,
        "core.organization.Organization",
        "s",
        "Endorsement CPU queueing: proposal arrival to CPU slot granted.",
    ),
    _spec(
        "orderlesschain/P1/CPU",
        SPAN,
        "core.organization.Organization",
        "s",
        "Endorsement CPU service: slot granted to execution done.",
    ),
    _spec(
        "orderlesschain/P2/Commit",
        SPAN,
        "core.organization.Organization",
        "s",
        "Phase 2 at one organization: commit arrival to receipt send "
        "(verification + cache apply). attrs: valid (bool).",
    ),
    _spec(
        "orderlesschain/P2/Verify",
        SPAN,
        "core.organization.Organization",
        "s",
        "Signature/policy verification, including CPU queueing.",
    ),
    _spec(
        "orderlesschain/P2/Apply",
        SPAN,
        "core.organization.Organization",
        "s",
        "Applying the write-set to the CRDT cache: cache-lock wait + hold.",
    ),
    # -- network ------------------------------------------------------------------
    _spec(
        "net/hop",
        SPAN,
        "net.network.Network",
        "s",
        "One message in flight: send to delivery at the recipient. "
        "attrs: type (message type), sender.",
    ),
    # -- baseline phases (same names the TransactionRecorder uses) ---------------
    _spec("fabric/P1/Endorse", SPAN, "baselines.fabric.FabricPeer", "s", "Fabric endorsement at one peer."),
    _spec(
        "fabric/P2/Consensus",
        SPAN,
        "baselines.fabric.FabricNetwork",
        "s",
        "Solo/Raft ordering: arrival at the orderer to block broadcast.",
    ),
    _spec(
        "fabric/P3/Commit",
        SPAN,
        "baselines.fabric.FabricPeer",
        "s",
        "Block validation (MVCC) and commit of one transaction at one peer.",
    ),
    _spec(
        "fabriccrdt/P1/Endorse",
        SPAN,
        "baselines.fabric_crdt.FabricCRDTPeer",
        "s",
        "FabricCRDT endorsement (state-based CRDT document retrieval).",
    ),
    _spec(
        "fabriccrdt/P3/Merge",
        SPAN,
        "baselines.fabric_crdt.FabricCRDTPeer",
        "s",
        "Merging one delivered transaction's updates into the JSON CRDT.",
    ),
    _spec(
        "bidl/P1/Sequence",
        SPAN,
        "baselines.bidl.BIDLNetwork",
        "s",
        "Sequencer: arrival to sequenced multicast.",
    ),
    _spec(
        "bidl/P2/Consensus",
        SPAN,
        "baselines.bidl.BIDLNetwork",
        "s",
        "Consensus: enqueue at the leader to DECIDE.",
    ),
    _spec(
        "bidl/P3/Execution",
        SPAN,
        "baselines.bidl.BIDLOrg",
        "s",
        "Speculative execution of one sequenced transaction.",
    ),
    _spec("bidl/P4/Commit", SPAN, "baselines.bidl.BIDLOrg", "s", "Commit on DECIDE at one organization."),
    _spec(
        "hotstuff/P1/Consensus",
        SPAN,
        "baselines.sync_hotstuff.SyncHotStuffNetwork",
        "s",
        "Leader-side consensus: submit arrival to proposal broadcast.",
    ),
    _spec(
        "hotstuff/P2/Commit",
        SPAN,
        "baselines.sync_hotstuff.SyncHotStuffOrg",
        "s",
        "Commit of one transaction after the synchronous 2-delta wait.",
    ),
    # -- fault injection (repro.faults.engine.FaultInjector) -----------------------
    _spec(
        "fault/injected",
        INSTANT,
        "faults.engine.FaultInjector",
        "-",
        "One fault event applied from the schedule. attrs: kind.",
    ),
    _spec(
        "fault/crash",
        SPAN,
        "faults.engine.FaultInjector",
        "s",
        "A node's crash window: fail-stop to recovery (or run end).",
    ),
    _spec(
        "fault/partition",
        SPAN,
        "faults.engine.FaultInjector",
        "s",
        "A network partition window: cut to heal (or run end).",
    ),
    _spec(
        "fault/loss",
        SPAN,
        "faults.engine.FaultInjector",
        "s",
        "A message loss/duplication burst window.",
    ),
    _spec(
        "fault/slow",
        SPAN,
        "faults.engine.FaultInjector",
        "s",
        "A CPU slowdown window on one node. attrs: factor.",
    ),
    # -- adaptive resilience (repro.resilience, docs/RESILIENCE.md) -----------------
    _spec(
        "client/retry",
        INSTANT,
        "core.client.Client",
        "-",
        "A phase is being retried after a timed-out attempt. "
        "attrs: phase (endorse|commit), attempt (1-based).",
    ),
    _spec(
        "client/backoff",
        SPAN,
        "core.client.Client",
        "s",
        "One timed-out wait window that a retry follows; the next "
        "attempt's deadline is backed off. attrs: attempt, deadline.",
    ),
    _spec(
        "breaker/transition",
        INSTANT,
        "resilience.breaker.CircuitBreaker",
        "-",
        "A per-org circuit breaker changed state. attrs: org, "
        "from, to (closed|open|half-open).",
    ),
    _spec(
        "org/snapshot",
        INSTANT,
        "core.organization.Organization",
        "-",
        "A recovery checkpoint of the committed set was taken. "
        "attrs: txns (total), new (since the previous snapshot).",
    ),
    _spec(
        "org/recover",
        SPAN,
        "core.organization.Organization",
        "s",
        "Snapshot-based crash recovery: delta replay plus targeted "
        "anti-entropy. attrs: mode, replayed, peers.",
    ),
    # -- watermark anti-entropy (docs/PERFORMANCE.md) --------------------------------
    _spec(
        "org/sync_digest",
        INSTANT,
        "core.organization.Organization",
        "-",
        "An anti-entropy digest was sent. attrs: mode "
        "(watermark|legacy), bytes (modeled wire size), context "
        "(sync|resync|recover).",
    ),
    _spec(
        "org/sync_reconcile",
        INSTANT,
        "core.organization.Organization",
        "-",
        "A received digest was reconciled against local state. attrs: "
        "mode, missing (ids requested), surplus (txns pushed), pages "
        "(sync messages sent).",
    ),
    # -- report pipeline (repro.report.pipeline) -----------------------------------
    # These are the only spans measured in *wall* seconds: they time the
    # report pipeline itself (the harness), not the simulation.
    _spec(
        "report/experiment",
        SPAN,
        "report.pipeline.run_report",
        "s (wall)",
        "One catalog experiment through the report pipeline: cache "
        "lookup, run on miss, store. attrs: spec_id, cached (bool).",
    ),
    _spec(
        "report/render",
        SPAN,
        "report.pipeline.run_report",
        "s (wall)",
        "Rendering/diffing every selected section plus manifest and CSV "
        "output. attrs: check (bool), sections (count).",
    ),
    # -- schedule exploration (repro.explore.engine) -------------------------------
    # Wall-second harness spans, same convention as report/*.
    _spec(
        "explore/execution",
        SPAN,
        "explore.engine.explore",
        "s (wall)",
        "One explored case executed and oracle-checked. attrs: system, "
        "ok (bool), novel (coverage signature unseen before).",
    ),
    _spec(
        "explore/minimize",
        SPAN,
        "explore.engine.explore",
        "s (wall)",
        "Delta-debugging a violation to a minimal counterexample, "
        "including the two replay-verification executions. attrs: "
        "executions (count), events_before, events_after.",
    ),
    # -- node time-series gauges (sampled by obs.sampler.NodeSampler) --------------
    _spec(
        "node/cpu/utilization",
        GAUGE,
        "obs.sampler.NodeSampler",
        "fraction",
        "Busy fraction of the node's CPU slots over the last sample window.",
    ),
    _spec("node/cpu/queue", GAUGE, "obs.sampler.NodeSampler", "requests", "Requests waiting for a CPU slot."),
    _spec("node/cpu/in_use", GAUGE, "obs.sampler.NodeSampler", "slots", "CPU slots currently held."),
    _spec(
        "node/lock/utilization",
        GAUGE,
        "obs.sampler.NodeSampler",
        "fraction",
        "Busy fraction of the CRDT-cache lock over the last sample window.",
    ),
    _spec("node/lock/queue", GAUGE, "obs.sampler.NodeSampler", "requests", "Requests waiting for the cache lock."),
    _spec(
        "node/queue/depth",
        GAUGE,
        "obs.sampler.NodeSampler",
        "items",
        "Items waiting in a batch server's queue (orderer/sequencer/leader).",
    ),
    _spec("net/in_flight", GAUGE, "obs.sampler.NodeSampler", "messages", "Messages currently in transit."),
    # -- network cumulative counters (sampled) -----------------------------------
    _spec("net/sent", COUNTER, "obs.sampler.NodeSampler", "messages", "Cumulative messages sent."),
    _spec("net/delivered", COUNTER, "obs.sampler.NodeSampler", "messages", "Cumulative messages delivered."),
    _spec("net/dropped", COUNTER, "obs.sampler.NodeSampler", "messages", "Cumulative messages dropped."),
    _spec(
        "net/sent_by_channel",
        COUNTER,
        "obs.sampler.NodeSampler",
        "messages",
        "Cumulative channel-tagged messages sent; the node field carries the channel id.",
    ),
    _spec(
        "net/bytes_by_channel",
        COUNTER,
        "obs.sampler.NodeSampler",
        "bytes",
        "Cumulative modeled wire bytes per channel; the node field carries the channel id.",
    ),
]

SCHEMA: Dict[str, MetricSpec] = {spec.name: spec for spec in _SPECS}

SPAN_NAMES = frozenset(spec.name for spec in _SPECS if spec.kind == SPAN)
INSTANT_NAMES = frozenset(spec.name for spec in _SPECS if spec.kind == INSTANT)
GAUGE_NAMES = frozenset(spec.name for spec in _SPECS if spec.kind == GAUGE)
COUNTER_NAMES = frozenset(spec.name for spec in _SPECS if spec.kind == COUNTER)


def spec_for(name: str) -> MetricSpec:
    """The spec for an emitted name; raises ``KeyError`` if undocumented."""
    return SCHEMA[name]


def validate_collector(collector) -> List[str]:
    """Check every record in a :class:`TraceCollector` against the schema."""
    errors: List[str] = []
    for span in collector.spans:
        if span.name not in SPAN_NAMES:
            errors.append(f"undocumented span name {span.name!r}")
        if span.end < span.start:
            errors.append(f"span {span.name!r} ends before it starts ({span.start} > {span.end})")
        if span.start < 0:
            errors.append(f"span {span.name!r} starts before t=0")
    for instant in collector.instants:
        if instant.name not in INSTANT_NAMES:
            errors.append(f"undocumented instant name {instant.name!r}")
    for sample in collector.samples:
        if sample.name not in GAUGE_NAMES and sample.name not in COUNTER_NAMES:
            errors.append(f"undocumented sample name {sample.name!r}")
    return errors


def validate_chrome_trace(payload: Any) -> List[str]:
    """Check an exported Chrome trace against the documented schema.

    Returns a list of problems (empty means valid). The checks cover
    the structural contract ``chrome://tracing`` needs — ``traceEvents``
    with ``name``/``ph``/``ts``, complete events with non-negative
    ``dur`` — plus the repro-specific contract that every event name is
    documented in :data:`SCHEMA` with the matching kind.
    """
    errors: List[str] = []
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        return ["payload is not a dict with a 'traceEvents' key"]
    events = payload["traceEvents"]
    if not isinstance(events, list):
        return ["'traceEvents' is not a list"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph is None or "name" not in event:
            errors.append(f"{where}: missing 'ph' or 'name'")
            continue
        if ph == "M":  # metadata (process/thread names) carries no timestamp
            continue
        if not isinstance(event.get("ts"), (int, float)) or event["ts"] < 0:
            errors.append(f"{where}: missing or negative 'ts'")
        name = event["name"]
        if ph == "X":
            if not isinstance(event.get("dur"), (int, float)) or event["dur"] < 0:
                errors.append(f"{where}: complete event without non-negative 'dur'")
            if name not in SPAN_NAMES:
                errors.append(f"{where}: undocumented span name {name!r}")
        elif ph == "i":
            if name not in INSTANT_NAMES:
                errors.append(f"{where}: undocumented instant name {name!r}")
        elif ph == "C":
            if name not in GAUGE_NAMES and name not in COUNTER_NAMES:
                errors.append(f"{where}: undocumented counter name {name!r}")
            if not isinstance(event.get("args"), dict) or not event["args"]:
                errors.append(f"{where}: counter event without args")
        else:
            errors.append(f"{where}: unsupported phase {ph!r}")
    return errors


__all__ = [
    "COUNTER",
    "COUNTER_NAMES",
    "GAUGE",
    "GAUGE_NAMES",
    "INSTANT",
    "INSTANT_NAMES",
    "MetricSpec",
    "SCHEMA",
    "SPAN",
    "SPAN_NAMES",
    "spec_for",
    "validate_chrome_trace",
    "validate_collector",
]
