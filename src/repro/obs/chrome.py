"""Chrome trace-event-format export.

Turns a :class:`~repro.obs.trace.TraceCollector` into the JSON the
``chrome://tracing`` / Perfetto UI loads: spans become complete events
(``ph: "X"``), instants become instant events (``ph: "i"``), samples
become counter events (``ph: "C"``). Nodes map to processes (pids) and
transactions to threads (tids) within their node, so one transaction's
phases line up on one row and a node's work stacks visually.

Timestamps are simulated *micro*seconds (the format's unit); the
simulation's float seconds are multiplied by 1e6 and rounded to 3
decimal places to keep files diffable.

``phase_means_from_trace`` inverts the export: given a written trace
(the parsed JSON), it regenerates the Table-3-style mean-duration-per-
phase breakdown — the acceptance path of ``bench_smoke_obs.py``.
"""

from __future__ import annotations

import json
from collections import defaultdict
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.trace import TraceCollector

_US = 1_000_000.0


def _us(seconds: float) -> float:
    return round(seconds * _US, 3)


class _IdAllocator:
    """Stable small integers for node (pid) and txn (tid) names."""

    def __init__(self, start: int = 1) -> None:
        self._ids: Dict[str, int] = {}
        self._next = start

    def get(self, key: str) -> int:
        if key not in self._ids:
            self._ids[key] = self._next
            self._next += 1
        return self._ids[key]

    def items(self) -> List[Tuple[str, int]]:
        return sorted(self._ids.items(), key=lambda kv: kv[1])


def to_chrome_trace(collector: TraceCollector) -> Dict[str, Any]:
    """The collector's records as a Chrome trace-event JSON payload."""
    pids = _IdAllocator()
    tid_allocators: Dict[int, _IdAllocator] = defaultdict(lambda: _IdAllocator(start=1))
    events: List[Dict[str, Any]] = []

    def _pid(node: str) -> int:
        return pids.get(node or "(global)")

    def _tid(pid: int, txn_id: Optional[str]) -> int:
        if txn_id is None:
            return 0
        return tid_allocators[pid].get(txn_id)

    for span in collector.spans:
        pid = _pid(span.node)
        events.append(
            {
                "name": span.name,
                "cat": span.name.split("/", 1)[0],
                "ph": "X",
                "ts": _us(span.start),
                "dur": _us(span.duration),
                "pid": pid,
                "tid": _tid(pid, span.txn_id),
                "args": {**span.attrs, **({"txn_id": span.txn_id} if span.txn_id else {})},
            }
        )
    for instant in collector.instants:
        pid = _pid(instant.node)
        events.append(
            {
                "name": instant.name,
                "cat": instant.name.split("/", 1)[0],
                "ph": "i",
                "s": "t",
                "ts": _us(instant.at),
                "pid": pid,
                "tid": _tid(pid, instant.txn_id),
                "args": {**instant.attrs, **({"txn_id": instant.txn_id} if instant.txn_id else {})},
            }
        )
    for sample in collector.samples:
        pid = _pid(sample.node)
        events.append(
            {
                "name": sample.name,
                "cat": "metrics",
                "ph": "C",
                "ts": _us(sample.at),
                "pid": pid,
                "tid": 0,
                "args": {"value": sample.value},
            }
        )
    metadata: List[Dict[str, Any]] = []
    for node, pid in pids.items():
        metadata.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": node},
            }
        )
        for txn_id, tid in tid_allocators.get(pid, _IdAllocator()).items():
            metadata.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": txn_id},
                }
            )
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


def write_chrome_trace(collector: TraceCollector, path: str) -> Dict[str, Any]:
    """Export the collector to ``path`` and return the payload."""
    payload = to_chrome_trace(collector)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return payload


def load_chrome_trace(path: str) -> Dict[str, Any]:
    with open(path) as handle:
        return json.load(handle)


def phase_means_from_trace(payload: Dict[str, Any]) -> Dict[str, float]:
    """Regenerate mean span durations (ms) from an exported trace.

    This is deliberately computed from the *exported* JSON, not the
    live collector, to prove the trace file alone carries the Table-3
    breakdown.
    """
    totals: Dict[str, Tuple[float, int]] = {}
    for event in payload.get("traceEvents", []):
        if event.get("ph") != "X":
            continue
        total, count = totals.get(event["name"], (0.0, 0))
        totals[event["name"]] = (total + event["dur"], count + 1)
    # dur is in microseconds; report milliseconds.
    return {name: total / count / 1000.0 for name, (total, count) in sorted(totals.items())}


def phase_shares_from_trace(
    payload: Dict[str, Any], names: List[str]
) -> Dict[str, float]:
    """Each named phase's share of the named phases' total mean time."""
    means = phase_means_from_trace(payload)
    picked = {name: means.get(name, 0.0) for name in names}
    total = sum(picked.values())
    if total <= 0:
        return {name: 0.0 for name in names}
    return {name: value / total for name, value in picked.items()}


__all__ = [
    "load_chrome_trace",
    "phase_means_from_trace",
    "phase_shares_from_trace",
    "to_chrome_trace",
    "write_chrome_trace",
]
