"""In-memory trace collection and trace-derived views.

:class:`TraceCollector` implements the :class:`~repro.obs.recorder.Recorder`
protocol with plain appends — recording never perturbs the simulation.
It keeps three flat lists (spans, instants, samples) plus indexes by
transaction id, and offers the views the benchmark layer builds on:
per-transaction lifecycles, Table-3-style phase means, and gauge time
series.

All timestamps are simulated seconds. Span/instant/sample names are
documented in ``repro.obs.schema``.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


@dataclass(frozen=True, slots=True)
class Span:
    """One closed interval of simulated time."""

    name: str
    start: float
    end: float
    node: str = ""
    txn_id: Optional[str] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def contains(self, other: "Span") -> bool:
        """Whether ``other`` nests inside this span (inclusive bounds)."""
        return self.start <= other.start and other.end <= self.end


@dataclass(frozen=True, slots=True)
class Instant:
    """One point event."""

    name: str
    at: float
    node: str = ""
    txn_id: Optional[str] = None
    attrs: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True, slots=True)
class Sample:
    """One gauge/counter reading."""

    name: str
    at: float
    value: float
    node: str = ""


class TraceCollector:
    """Collects spans, instants, and samples from a traced run."""

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self.instants: List[Instant] = []
        self.samples: List[Sample] = []
        self._spans_by_txn: Dict[str, List[Span]] = defaultdict(list)

    # -- Recorder protocol -------------------------------------------------

    def span(self, name, start, end, *, node="", txn_id=None, attrs=None) -> None:
        record = Span(name, start, end, node=node, txn_id=txn_id, attrs=dict(attrs or {}))
        self.spans.append(record)
        if txn_id is not None:
            self._spans_by_txn[txn_id].append(record)

    def instant(self, name, at, *, node="", txn_id=None, attrs=None) -> None:
        self.instants.append(Instant(name, at, node=node, txn_id=txn_id, attrs=dict(attrs or {})))

    def sample(self, name, at, value, *, node="") -> None:
        self.samples.append(Sample(name, at, float(value), node=node))

    # -- span views ----------------------------------------------------------

    def spans_named(self, name: str) -> List[Span]:
        return [span for span in self.spans if span.name == name]

    def spans_for_txn(self, txn_id: str) -> List[Span]:
        """All spans carrying this transaction id, in emission order."""
        return list(self._spans_by_txn.get(txn_id, ()))

    def txn_ids(self) -> List[str]:
        return sorted(self._spans_by_txn)

    def phase_means_ms(self) -> Dict[str, float]:
        """Mean duration per span name, in milliseconds (Table 3 shape)."""
        totals: Dict[str, Tuple[float, int]] = {}
        for span in self.spans:
            total, count = totals.get(span.name, (0.0, 0))
            totals[span.name] = (total + span.duration, count + 1)
        return {
            name: 1000.0 * total / count for name, (total, count) in sorted(totals.items())
        }

    def phase_shares(self, names: List[str]) -> Dict[str, float]:
        """Each named phase's share of the named phases' total mean time."""
        means = self.phase_means_ms()
        picked = {name: means.get(name, 0.0) for name in names}
        total = sum(picked.values())
        if total <= 0:
            return {name: 0.0 for name in names}
        return {name: value / total for name, value in picked.items()}

    # -- sample views -----------------------------------------------------------

    def series(self, name: str, node: Optional[str] = None) -> List[Tuple[float, float]]:
        """The (time, value) series of one gauge, optionally per node."""
        return [
            (sample.at, sample.value)
            for sample in self.samples
            if sample.name == name and (node is None or sample.node == node)
        ]

    def sample_names(self) -> List[str]:
        return sorted({sample.name for sample in self.samples})

    def nodes_sampled(self) -> List[str]:
        return sorted({sample.node for sample in self.samples if sample.node})


__all__ = ["Span", "Instant", "Sample", "TraceCollector"]
