"""``repro.obs`` — opt-in observability for the simulated stack.

Three layers, per docs/OBSERVABILITY.md:

* **transaction lifecycle tracing** — spans with sim-timestamps for
  every protocol phase, collected by
  :class:`~repro.obs.trace.TraceCollector` and exportable to the
  ``chrome://tracing`` JSON format (:mod:`repro.obs.chrome`);
* **node time-series metrics** — periodic per-node CPU utilization,
  queue depths, and network in-flight counts
  (:class:`~repro.obs.sampler.NodeSampler`);
* **profiling hooks** — the pluggable
  :class:`~repro.obs.recorder.Recorder` protocol, so benchmarks attach
  collectors without touching protocol code.

The layer is zero-overhead when disabled: components hold a ``tracer``
attribute that defaults to ``None`` and every emission site is guarded
by one attribute check. When enabled, recorders are *passive* — they
never perturb simulated results (see ``repro.sim.core`` and
``tests/obs/test_determinism.py``).

Typical use::

    from repro.obs import Observability

    obs = Observability(trace=True, sample_interval=0.5)
    net = OrderlessChainNetwork(settings)
    net.add_clients(4)
    net.attach_observability(obs)
    net.run(until=30.0)

    obs.trace.phase_means_ms()               # Table-3-style breakdown
    from repro.obs.chrome import write_chrome_trace
    write_chrome_trace(obs.trace, "trace.json")   # load in chrome://tracing
"""

from __future__ import annotations

from typing import Optional

from repro.obs.recorder import MultiRecorder, NullRecorder, Recorder
from repro.obs.sampler import NodeSampler
from repro.obs.trace import Instant, Sample, Span, TraceCollector


class Observability:
    """Bundles a trace collector and a node sampler for one run.

    ``trace=False`` disables span/instant collection; a
    ``sample_interval`` of 0 disables node time-series sampling. An
    ``extra_recorder`` (any :class:`Recorder`) receives everything the
    built-in collector does — the benchmark-pluggability hook.
    """

    def __init__(
        self,
        trace: bool = True,
        sample_interval: float = 0.0,
        extra_recorder: Optional[Recorder] = None,
    ) -> None:
        self.trace: Optional[TraceCollector] = TraceCollector() if trace else None
        sinks = [sink for sink in (self.trace, extra_recorder) if sink is not None]
        if not sinks:
            self.recorder: Recorder = NullRecorder()
        elif len(sinks) == 1:
            self.recorder = sinks[0]
        else:
            self.recorder = MultiRecorder(sinks)
        self.sample_interval = sample_interval
        self.sampler: Optional[NodeSampler] = None

    def bind(self, sim) -> Optional[NodeSampler]:
        """Create (once) and return the sampler for ``sim``.

        Called by a network's ``attach_observability``; returns ``None``
        when sampling is disabled. The sampler is started by the caller
        after registering its probes.
        """
        if self.sample_interval > 0 and self.sampler is None:
            self.sampler = NodeSampler(sim, self.recorder, self.sample_interval)
        return self.sampler

    def detach(self) -> "Observability":
        """Disconnect from the simulation, keeping the collected data.

        The sampler holds references to the simulator and its networks
        (including live generator objects), which cannot cross a
        process boundary; dropping it makes the bundle picklable so a
        parallel sweep worker can ship results back to the parent. The
        trace collector — all recorded spans, instants, and samples —
        is untouched.
        """
        self.sampler = None
        return self


__all__ = [
    "Instant",
    "MultiRecorder",
    "NodeSampler",
    "NullRecorder",
    "Observability",
    "Recorder",
    "Sample",
    "Span",
    "TraceCollector",
]
