"""Coordination extension: sealing non-I-confluent objects.

The paper's Discussion (Section 9): invariants like "a deadline for
the end of an election, after which the votes are rejected" are *not*
I-confluent and require coordination. "One approach for enabling
OrderlessChain to preserve such invariants is extending it with
coordination-based protocols ... the coordination-based protocol can
be enabled only when we are near the end. Otherwise, we use our
scalable coordination-free protocol."

This module implements that hybrid: a **seal** is a one-shot,
coordinator-driven agreement on an object's final transaction set.

Protocol (two phases, all ``n`` organizations):

1. *Freeze*: the coordinator freezes the object locally and broadcasts
   ``SEAL_FREEZE``; every organization freezes the object (new client
   commits touching it are rejected with reason ``"sealed"``) and
   votes with the set of valid transactions it has committed for the
   object — including their full payloads, so stragglers can catch up.
2. *Seal-commit*: once every organization voted (coordination needs
   all ``n``; a timeout aborts and unfreezes, preserving liveness of
   the coordination-free path), the coordinator unions the votes into
   the final set and broadcasts ``SEAL_COMMIT``. Each organization
   first commits any transactions it was missing, then marks the
   object sealed. All replicas therefore agree on exactly which
   transactions made the deadline.

Between seals, the object is served by the ordinary coordination-free
protocol — the hybrid the paper sketches.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Optional, Set

from repro.core.organization import Organization
from repro.core.transaction import Transaction
from repro.net.message import Message
from repro.sim.events import AnyOf, Event

MSG_SEAL_FREEZE = "orderless.seal.freeze"
MSG_SEAL_VOTE = "orderless.seal.vote"
MSG_SEAL_COMMIT = "orderless.seal.commit"
MSG_SEAL_ABORT = "orderless.seal.abort"

_seal_ids = itertools.count()


class SealingProtocol:
    """Per-organization state and handlers for the sealing extension.

    Install one instance on every organization::

        protocols = [SealingProtocol(org) for org in net.organizations]
        outcome = net.sim.process(protocols[0].seal("voting/e0/party1"))

    ``seal`` runs at the coordinator; the other instances participate
    through their registered message handlers.
    """

    def __init__(self, org: Organization, vote_timeout: float = 5.0) -> None:
        self.org = org
        self.vote_timeout = vote_timeout
        self.frozen: Set[str] = set()
        self.sealed: Dict[str, Set[str]] = {}  # object -> final txn ids
        self._catching_up: Set[str] = set()  # txn ids exempt from the guard
        self._votes: Dict[int, tuple[Event, Dict[str, Dict[str, Any]], Set[str]]] = {}
        org.extension_handlers[MSG_SEAL_FREEZE] = self._on_freeze
        org.extension_handlers[MSG_SEAL_VOTE] = self._on_vote
        org.extension_handlers[MSG_SEAL_COMMIT] = self._on_commit
        org.extension_handlers[MSG_SEAL_ABORT] = self._on_abort
        org.commit_guards.append(self._guard)

    # -- the commit guard -------------------------------------------------

    def _guard(self, transaction: Transaction) -> Optional[str]:
        """Reject transactions touching frozen or sealed objects.

        Transactions in the agreed final set stay committable — the
        seal-commit catch-up relies on it.
        """
        txn_id = transaction.transaction_id
        if txn_id in self._catching_up:
            return None
        for operation in transaction.operations():
            object_id = operation.object_id
            if object_id in self.sealed and txn_id not in self.sealed[object_id]:
                return "sealed"
            if object_id in self.frozen:
                return "sealed"
        return None

    def is_sealed(self, object_id: str) -> bool:
        return object_id in self.sealed

    # -- coordinator side -----------------------------------------------------

    def seal(self, object_id: str):
        """Coordinate sealing ``object_id``; a process generator.

        Returns the final set of transaction ids on success, or
        ``None`` if any organization failed to vote in time (the seal
        aborts and the object unfreezes everywhere).
        """
        org = self.org
        seal_id = next(_seal_ids)
        self.frozen.add(object_id)
        all_votes = Event(org.sim)
        votes: Dict[str, Dict[str, Any]] = dict(org.transactions_for_object(object_id))
        voters: Set[str] = {org.org_id}
        needed = len(org.peer_ids) + 1
        self._votes[seal_id] = (all_votes, votes, voters)
        if needed == 1 and not all_votes.triggered:
            all_votes.trigger()
        for peer in org.peer_ids:
            org.network.send(
                Message(
                    sender=org.org_id,
                    recipient=peer,
                    msg_type=MSG_SEAL_FREEZE,
                    body={"seal_id": seal_id, "object_id": object_id},
                    size_bytes=160,
                )
            )
        winner = yield AnyOf(org.sim, [all_votes, org.sim.timeout(self.vote_timeout)])
        _, votes, voters = self._votes.pop(seal_id)
        if winner is not all_votes or len(voters) < needed:
            # Liveness: abort the seal, resume coordination-free mode.
            self.frozen.discard(object_id)
            for peer in org.peer_ids:
                org.network.send(
                    Message(
                        sender=org.org_id,
                        recipient=peer,
                        msg_type=MSG_SEAL_ABORT,
                        body={"object_id": object_id},
                        size_bytes=120,
                    )
                )
            return None
        final_wires = votes  # txn_id -> wire, unioned across all orgs
        body = {"object_id": object_id, "transactions": final_wires}
        size = 200 + 400 * len(final_wires)
        for peer in org.peer_ids:
            org.network.send(
                Message(
                    sender=org.org_id,
                    recipient=peer,
                    msg_type=MSG_SEAL_COMMIT,
                    body=body,
                    size_bytes=size,
                )
            )
        yield from self._apply_seal(object_id, final_wires)
        return set(final_wires)

    def _on_vote(self, message: Message) -> None:
        entry = self._votes.get(message.body["seal_id"])
        if entry is None:
            return
        event, votes, voters = entry
        if message.sender in voters:
            return
        voters.add(message.sender)
        votes.update(message.body["transactions"])
        if len(voters) >= len(self.org.peer_ids) + 1 and not event.triggered:
            event.trigger()

    # -- participant side ---------------------------------------------------------

    def _on_freeze(self, message: Message) -> None:
        object_id = message.body["object_id"]
        self.frozen.add(object_id)
        self.org.network.send(
            Message(
                sender=self.org.org_id,
                recipient=message.sender,
                msg_type=MSG_SEAL_VOTE,
                body={
                    "seal_id": message.body["seal_id"],
                    "transactions": self.org.transactions_for_object(object_id),
                },
                size_bytes=200 + 400 * len(self.org.transactions_for_object(object_id)),
            )
        )

    def _on_commit(self, message: Message) -> None:
        object_id = message.body["object_id"]
        wires = message.body["transactions"]
        self.org.sim.process(
            self._apply_seal(object_id, wires), name=f"{self.org.org_id}.seal"
        )

    def _on_abort(self, message: Message) -> None:
        self.frozen.discard(message.body["object_id"])

    def _apply_seal(self, object_id: str, final_wires: Dict[str, Dict[str, Any]]):
        """Catch up on missing transactions, then seal the object."""
        self._catching_up |= set(final_wires)
        try:
            for txn_id, wire in sorted(final_wires.items()):
                # is_valid_transaction, not has_transaction: a racing
                # client commit may have been *rejected* here while the
                # object was frozen, and the agreed final set overrides
                # that rejection.
                if not self.org.ledger.is_valid_transaction(txn_id):
                    yield from self.org.commit_directly(Transaction.from_wire(wire))
        finally:
            self._catching_up -= set(final_wires)
        self.sealed[object_id] = set(final_wires)
        self.frozen.discard(object_id)


def install_sealing(network, vote_timeout: float = 5.0) -> Dict[str, SealingProtocol]:
    """Install the sealing extension on every organization of a network.

    Returns a mapping from organization id to its protocol instance;
    any of them can act as coordinator.
    """
    return {
        org.org_id: SealingProtocol(org, vote_timeout=vote_timeout)
        for org in network.organizations
    }


__all__ = ["SealingProtocol", "install_sealing"]
