"""Protocol messages of the two-phase execute-commit protocol.

* :class:`Proposal` — phase 1: the client's request to execute a smart
  contract function (client id, contract id, function, parameters,
  client's Lamport clock).
* :class:`Endorsement` — an organization's signed write-set for a
  proposal.
* :class:`Transaction` — phase 2: the write-set plus the collected
  endorsements, signed by the client.
* :class:`Receipt` — the signed hash of the block containing the
  committed transaction (``RCPT`` for valid, ``REJ`` for invalid).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Tuple

from repro.crdt.clock import OpClock
from repro.crdt.operation import Operation
from repro.crypto.hashing import sha256_hex
from repro.crypto.identity import Identity


@dataclass(frozen=True)
class Proposal:
    """A transaction proposal ``TP_i`` (phase 1, step 1)."""

    client_id: str
    contract_id: str
    function: str
    params: Dict[str, Any]
    clock: OpClock

    @property
    def proposal_id(self) -> str:
        """Unique id: the client id plus the client's Lamport counter."""
        return f"{self.client_id}:{self.clock.counter}"

    def to_wire(self) -> Dict[str, Any]:
        return {
            "client_id": self.client_id,
            "contract_id": self.contract_id,
            "function": self.function,
            "params": self.params,
            "clock": self.clock.to_wire(),
        }

    @classmethod
    def from_wire(cls, wire: Mapping[str, Any]) -> "Proposal":
        return cls(
            client_id=wire["client_id"],
            contract_id=wire["contract_id"],
            function=wire["function"],
            params=dict(wire["params"]),
            clock=OpClock.from_wire(wire["clock"]),
        )


def write_set_digest(write_set: List[Dict[str, Any]]) -> str:
    """Hash of a write-set (the payload both parties sign)."""
    return sha256_hex({"write_set": write_set})


@dataclass(frozen=True)
class Endorsement:
    """An organization's signed response to a proposal (step 2).

    ``signature`` covers the proposal id and the write-set digest, so
    neither the client nor other organizations can tamper with the
    endorsed operations without invalidating it.
    """

    org_id: str
    proposal_id: str
    write_set: List[Dict[str, Any]]
    signature: str

    @staticmethod
    def signed_payload(proposal_id: str, write_set: List[Dict[str, Any]]) -> Dict[str, Any]:
        return {"proposal_id": proposal_id, "digest": write_set_digest(write_set)}

    @staticmethod
    def signed_payload_from_digest(proposal_id: str, digest: str) -> Dict[str, Any]:
        return {"proposal_id": proposal_id, "digest": digest}

    @classmethod
    def create(
        cls, identity: Identity, proposal_id: str, write_set: List[Dict[str, Any]]
    ) -> "Endorsement":
        payload = cls.signed_payload(proposal_id, write_set)
        return cls(
            org_id=identity.identifier,
            proposal_id=proposal_id,
            write_set=write_set,
            signature=identity.sign(payload),
        )

    def to_wire(self) -> Dict[str, Any]:
        # Memoized: wire payloads are immutable by convention, so the
        # same dict can be handed out every time — which also lets the
        # canonical-bytes fragment cache serve repeat serializations.
        wire = self.__dict__.get("_wire_cache")
        if wire is None:
            wire = {
                "org_id": self.org_id,
                "proposal_id": self.proposal_id,
                "write_set": self.write_set,
                "signature": self.signature,
            }
            object.__setattr__(self, "_wire_cache", wire)
        return wire

    @classmethod
    def from_wire(cls, wire: Mapping[str, Any]) -> "Endorsement":
        # The wire write-set is shared, not copied: wire payloads are
        # immutable by convention (tamper paths build new lists), and
        # sharing lets the canonical-bytes fragment cache serve every
        # later digest of this write-set from one serialization.
        endorsement = cls(
            org_id=wire["org_id"],
            proposal_id=wire["proposal_id"],
            write_set=wire["write_set"],
            signature=wire["signature"],
        )
        if type(wire) is dict:
            object.__setattr__(endorsement, "_wire_cache", wire)
        return endorsement


@dataclass(frozen=True)
class Transaction:
    """An assembled transaction ``TS_i`` (phase 2, step 3)."""

    proposal: Proposal
    write_set: List[Dict[str, Any]]
    endorsements: Tuple[Endorsement, ...]
    client_signature: str

    @property
    def transaction_id(self) -> str:
        return self.proposal.proposal_id

    def digest(self) -> str:
        """Write-set digest, computed once per transaction object.

        Validation hashes the same write-set for the client signature
        and once per endorsement; caching keeps that O(1) in hashing.
        """
        cached = self.__dict__.get("_digest_cache")
        if cached is None:
            cached = write_set_digest(self.write_set)
            object.__setattr__(self, "_digest_cache", cached)
        return cached

    @staticmethod
    def signed_payload(proposal_id: str, write_set: List[Dict[str, Any]]) -> Dict[str, Any]:
        return {"transaction_id": proposal_id, "digest": write_set_digest(write_set)}

    @staticmethod
    def signed_payload_from_digest(proposal_id: str, digest: str) -> Dict[str, Any]:
        return {"transaction_id": proposal_id, "digest": digest}

    @classmethod
    def assemble(
        cls,
        client_identity: Identity,
        proposal: Proposal,
        write_set: List[Dict[str, Any]],
        endorsements: List[Endorsement],
    ) -> "Transaction":
        """Create and client-sign the transaction (phase 2 entry)."""
        payload = cls.signed_payload(proposal.proposal_id, write_set)
        return cls(
            proposal=proposal,
            write_set=write_set,
            endorsements=tuple(endorsements),
            client_signature=client_identity.sign(payload),
        )

    def operations(self) -> List[Operation]:
        """Parse the write-set into CRDT operations (validates them)."""
        return [Operation.from_wire(wire) for wire in self.write_set]

    def to_wire(self) -> Dict[str, Any]:
        # Memoized (and pre-seeded by from_wire): one transaction's wire
        # form is serialized for the client signature, gossiped to every
        # organization, and embedded in every block that logs it — the
        # shared dict turns all of those into fragment-cache hits.
        wire = self.__dict__.get("_wire_cache")
        if wire is None:
            wire = {
                "proposal": self.proposal.to_wire(),
                "write_set": self.write_set,
                "endorsements": [e.to_wire() for e in self.endorsements],
                "client_signature": self.client_signature,
            }
            object.__setattr__(self, "_wire_cache", wire)
        return wire

    @classmethod
    def from_wire(cls, wire: Mapping[str, Any]) -> "Transaction":
        # Shared, not copied — same immutable-wire convention as
        # Endorsement.from_wire, so the digest of this write-set is
        # computed from one cached serialization network-wide.
        transaction = cls(
            proposal=Proposal.from_wire(wire["proposal"]),
            write_set=wire["write_set"],
            endorsements=tuple(Endorsement.from_wire(e) for e in wire["endorsements"]),
            client_signature=wire["client_signature"],
        )
        if type(wire) is dict:
            object.__setattr__(transaction, "_wire_cache", wire)
        return transaction

    def wire_size(self) -> int:
        """Approximate serialized size in bytes (drives link delay)."""
        return 400 + 140 * len(self.write_set) + 120 * len(self.endorsements)


@dataclass(frozen=True)
class Receipt:
    """``RCPT_i`` / ``REJ_i`` (step 4): signed hash of the block holding
    the transaction, marked valid or invalid."""

    org_id: str
    transaction_id: str
    block_hash: str
    valid: bool
    signature: str

    @staticmethod
    def signed_payload(transaction_id: str, block_hash: str, valid: bool) -> Dict[str, Any]:
        return {"transaction_id": transaction_id, "block_hash": block_hash, "valid": valid}

    @classmethod
    def create(
        cls, identity: Identity, transaction_id: str, block_hash: str, valid: bool
    ) -> "Receipt":
        payload = cls.signed_payload(transaction_id, block_hash, valid)
        return cls(
            org_id=identity.identifier,
            transaction_id=transaction_id,
            block_hash=block_hash,
            valid=valid,
            signature=identity.sign(payload),
        )

    def to_wire(self) -> Dict[str, Any]:
        return {
            "org_id": self.org_id,
            "transaction_id": self.transaction_id,
            "block_hash": self.block_hash,
            "valid": self.valid,
            "signature": self.signature,
        }

    @classmethod
    def from_wire(cls, wire: Mapping[str, Any]) -> "Receipt":
        return cls(
            org_id=wire["org_id"],
            transaction_id=wire["transaction_id"],
            block_hash=wire["block_hash"],
            valid=bool(wire["valid"]),
            signature=wire["signature"],
        )


__all__ = [
    "Proposal",
    "Endorsement",
    "Transaction",
    "Receipt",
    "write_set_digest",
]
