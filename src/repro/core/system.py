"""Assemble a complete OrderlessChain network.

:class:`OrderlessChainNetwork` wires the simulator, RNG streams, the
certificate authority, the WAN, ``n`` organizations, and any number of
clients into a runnable system, and provides the helpers experiments
need: Byzantine window scheduling, convergence checks, and final-state
access.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.byzantine import ByzantineClientConfig, ByzantineOrgConfig
from repro.core.channel import DEFAULT_CHANNEL
from repro.core.client import Client, ClientConfig
from repro.core.contract import SmartContract
from repro.core.organization import Organization
from repro.core.perf import PerfModel
from repro.core.policy import EndorsementPolicy
from repro.core.recording import TransactionRecorder
from repro.errors import ConfigError
from repro.net.latency import LatencyModel, LinkFaults
from repro.net.network import Network
from repro.crypto.identity import CertificateAuthority
from repro.sim.core import Simulator
from repro.sim.nondeterminism import ExploreProfile
from repro.sim.rng import RngRegistry


@dataclass
class OrderlessChainSettings:
    """Everything needed to build a network."""

    num_orgs: int = 4
    quorum: int = 2
    seed: int = 0
    signature_scheme: str = "simulated"
    perf: PerfModel = field(default_factory=PerfModel)
    latency: LatencyModel = field(default_factory=LatencyModel)
    faults: LinkFaults = field(default_factory=LinkFaults)
    gossip_interval: float = 1.0
    gossip_fanout: int = 1
    gossip_ttl: int = 3
    sync_interval: float = 5.0
    # Snapshot-based crash recovery (docs/RESILIENCE.md); 0 keeps the
    # legacy full-resync recovery and takes no checkpoints.
    snapshot_interval: float = 0.0
    # Anti-entropy digest wire format (docs/PERFORMANCE.md): False (the
    # default) exchanges O(clients + gaps) watermark digests; True is
    # the ablation arm that ships the full committed-id set per round
    # (the pre-watermark behavior, byte-identical event order).
    legacy_digests: bool = False
    cache_enabled: bool = True
    client_config: ClientConfig = field(default_factory=ClientConfig)
    # Controlled nondeterminism for schedule exploration
    # (repro.sim.nondeterminism): permute same-time event ties and/or
    # jitter message delivery. None keeps the historical, golden-seed
    # -pinned event order.
    explore: Optional[ExploreProfile] = None

    def __post_init__(self) -> None:
        if self.num_orgs < 1:
            raise ConfigError(f"need at least one organization, got {self.num_orgs}")
        if not 0 < self.quorum <= self.num_orgs:
            raise ConfigError(
                f"endorsement policy needs 0 < q <= n, got q={self.quorum}, n={self.num_orgs}"
            )

    @classmethod
    def from_config(cls, config, **overrides) -> "OrderlessChainSettings":
        """The canonical ``ExperimentConfig`` → settings conversion.

        Every runner that builds an OrderlessChain network from a bench
        config goes through here (``repro.bench.runner``, perfbench,
        the ``repro.api`` facade) — there is exactly one place that
        knows how the two configuration layers map onto each other.
        ``config`` is duck-typed (any object with the
        ``ExperimentConfig`` knob attributes works), which keeps the
        core layer free of a ``repro.bench`` import. ``overrides``
        replace individual settings fields after the mapping (e.g.
        ``sync_interval`` for benchmarks).
        """
        from repro.resilience import ResilienceConfig

        kwargs = dict(
            num_orgs=config.num_orgs,
            quorum=config.quorum,
            seed=config.seed,
            perf=config.perf(),
            gossip_interval=config.gossip_interval,
            gossip_fanout=config.gossip_fanout,
            snapshot_interval=config.snapshot_interval,
            legacy_digests=config.legacy_digests,
            cache_enabled=config.cache_enabled,
            explore=config.explore,
            client_config=ClientConfig(
                max_retries=config.max_retries,
                avoid_byzantine=config.avoid_byzantine,
                org_weights=config.org_weights,
                resilience=ResilienceConfig() if config.resilience else None,
            ),
        )
        kwargs.update(overrides)
        return cls(**kwargs)


class OrderlessChainNetwork:
    """A built network: simulator + organizations + clients."""

    def __init__(self, settings: OrderlessChainSettings) -> None:
        self.settings = settings
        self.sim = Simulator()
        self.rng = RngRegistry(seed=settings.seed)
        self.ca = CertificateAuthority(scheme=settings.signature_scheme)
        self.network = Network(
            self.sim,
            self.rng.stream("net"),
            latency=settings.latency,
            faults=settings.faults,
        )
        if settings.explore is not None:
            # Must happen before anything is scheduled (the simulator
            # enforces this) so every event carries a homogeneous key.
            settings.explore.install(self.sim, self.network)
        self.policy = EndorsementPolicy(settings.quorum, settings.num_orgs)
        self.recorder = TransactionRecorder()
        self.organizations: List[Organization] = []
        for index in range(settings.num_orgs):
            identity = self.ca.enroll(f"org{index}", "organization", seed=f"org{index}".encode())
            org = Organization(
                sim=self.sim,
                network=self.network,
                identity=identity,
                ca=self.ca,
                policy=self.policy,
                perf=settings.perf,
                rng=self.rng.stream(f"org{index}"),
                recorder=self.recorder,
                cache_enabled=settings.cache_enabled,
                gossip_interval=settings.gossip_interval,
                gossip_fanout=settings.gossip_fanout,
                gossip_ttl=settings.gossip_ttl,
                sync_interval=settings.sync_interval,
                snapshot_interval=settings.snapshot_interval,
                legacy_digests=settings.legacy_digests,
            )
            self.organizations.append(org)
        org_ids = [org.org_id for org in self.organizations]
        for org in self.organizations:
            org.set_peers(org_ids)
        self.clients: List[Client] = []
        self.observability = None
        self._started = False

    @property
    def org_ids(self) -> List[str]:
        return [org.org_id for org in self.organizations]

    def org(self, org_id: str) -> Organization:
        for org in self.organizations:
            if org.org_id == org_id:
                return org
        raise ConfigError(f"unknown organization {org_id!r}")

    # -- setup -----------------------------------------------------------

    def install_contract(self, contract_factory, channel: str = DEFAULT_CHANNEL) -> None:
        """Install a contract on every organization.

        ``contract_factory`` is called once per organization so each
        holds its own instance (no shared mutable state). With a
        non-default ``channel`` the contract binds to that channel's
        sharded state and is addressed as ``"<channel>:<contract_id>"``
        (see :mod:`repro.core.channel`).
        """
        for org in self.organizations:
            org.install_contract(contract_factory(), channel=channel)

    def create_channel(self, channel_id: str, contract_factory=None) -> None:
        """Create a channel on every organization.

        Each organization grows an independent ledger, committed
        index, gossip backlog, and watermark digest for the channel;
        ``contract_factory`` (optional) is installed on it right away.
        Creating the first extra channel switches sync wire bodies to
        carry channel ids — call before :meth:`run` for deterministic
        results.
        """
        for org in self.organizations:
            org.create_channel(channel_id)
        if contract_factory is not None:
            self.install_contract(contract_factory, channel=channel_id)

    @property
    def channel_ids(self) -> List[str]:
        if not self.organizations:
            return [DEFAULT_CHANNEL]
        return list(self.organizations[0].channels)

    def add_client(
        self,
        name: Optional[str] = None,
        config: Optional[ClientConfig] = None,
        byzantine: Optional[ByzantineClientConfig] = None,
    ) -> Client:
        index = len(self.clients)
        identifier = name or f"client{index}"
        identity = self.ca.enroll(identifier, "client", seed=identifier.encode())
        client_config = config or self.settings.client_config
        # A dedicated stream for resilience jitter keeps protocol draws
        # untouched; RngRegistry streams are independent, so creating
        # it only for resilience clients preserves golden fingerprints.
        resilience_rng = (
            self.rng.stream(f"resilience:{identifier}")
            if client_config.resilience is not None
            else None
        )
        client = Client(
            sim=self.sim,
            network=self.network,
            identity=identity,
            policy=self.policy,
            org_ids=self.org_ids,
            perf=self.settings.perf,
            rng=self.rng.stream(f"client:{identifier}"),
            recorder=self.recorder,
            config=client_config,
            byzantine=byzantine,
            resilience_rng=resilience_rng,
        )
        self.clients.append(client)
        if self.observability is not None:
            client.tracer = self.observability.recorder
        return client

    def add_clients(self, count: int, **kwargs) -> List[Client]:
        return [self.add_client(**kwargs) for _ in range(count)]

    def attach_observability(self, obs) -> None:
        """Wire a :class:`repro.obs.Observability` into the network.

        Sets the tracer on the network, every organization, and every
        client (current and future), and — when sampling is enabled —
        registers per-node CPU/cache-lock probes plus network counters
        with the sampler. Call before :meth:`run`; safe to skip
        entirely, in which case the run is untraced.
        """
        self.observability = obs
        self.network.tracer = obs.recorder
        for org in self.organizations:
            org.tracer = obs.recorder
        for client in self.clients:
            client.tracer = obs.recorder
        sampler = obs.bind(self.sim)
        if sampler is not None:
            for org in self.organizations:
                sampler.watch_resource(org.org_id, "cpu", org.cpu)
                sampler.watch_resource(org.org_id, "lock", org.cache_lock)
            sampler.watch_network(self.network)
            sampler.start()

    def start(self) -> None:
        """Start organization background processes (gossip)."""
        if self._started:
            return
        self._started = True
        for org in self.organizations:
            org.start()

    # -- Byzantine scheduling (Figure 8) ------------------------------------

    def schedule_byzantine_window(
        self,
        org_ids: Sequence[str],
        start: float,
        end: Optional[float],
        config: Optional[ByzantineOrgConfig] = None,
    ) -> None:
        """Make the named organizations Byzantine during [start, end)."""
        config = config or ByzantineOrgConfig()
        for org_id in org_ids:
            org = self.org(org_id)

            def activate(org=org) -> None:
                org.byzantine = config
                org.byzantine_active = True

            def deactivate(org=org) -> None:
                org.byzantine_active = False

            self.sim.schedule_at(start, activate)
            if end is not None:
                self.sim.schedule_at(end, deactivate)

    # -- run and inspect ----------------------------------------------------------

    def run(self, until: float) -> None:
        self.start()
        self.sim.run(until=until)

    def converged(self) -> bool:
        """Whether every organization holds the same application state."""
        snapshots = [org.state_snapshot() for org in self.organizations]
        return all(snapshot == snapshots[0] for snapshot in snapshots)

    def committed_everywhere(
        self, transaction_id: str, channel: str = DEFAULT_CHANNEL
    ) -> int:
        """How many organizations committed the transaction as valid."""
        return sum(
            org.channels[channel].ledger.is_valid_transaction(transaction_id)
            for org in self.organizations
        )

    def verify_all_ledgers(self) -> None:
        for org in self.organizations:
            for channel in org.channels.values():
                channel.ledger.verify_integrity()

    # -- fault injection and invariant checking (docs/FAULTS.md) ------------------

    def install_fault_schedule(self, schedule, tracer=None):
        """Install a :class:`repro.faults.FaultSchedule` on this network.

        Call before :meth:`run`; returns the
        :class:`~repro.faults.engine.FaultInjector` (call its
        ``finalize()`` after the run to close open trace windows).
        When observability is attached, fault spans default to its
        recorder.
        """
        from repro.faults import install_schedule

        if tracer is None and self.observability is not None:
            tracer = self.observability.recorder
        return install_schedule(self, schedule, tracer=tracer)

    def check_invariants(self, schedule=None, quiescent: bool = True):
        """Run the invariant oracles; returns a ``CheckReport``."""
        from repro.checkers import run_checkers

        return run_checkers(self, schedule=schedule, quiescent=quiescent)


__all__ = ["OrderlessChainNetwork", "OrderlessChainSettings"]
