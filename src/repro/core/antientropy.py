"""Watermark-based anti-entropy digests (docs/PERFORMANCE.md).

The legacy anti-entropy step shipped the *entire* committed
transaction-id set every sync round — O(n log n) Python work and O(n)
modeled bytes per round, so long runs spent more time summarizing
history than committing transactions. Transaction ids are
``client_id:counter`` pairs (the proposal's Lamport clock), so the
committed set compresses losslessly into a per-client **high
watermark** plus a run-length-encoded **gap set** — a version-vector
digest in the CRDT tradition the paper builds on.

Two classes:

* :class:`WatermarkDigest` — the pure, wire-able summary. Per client
  it stores the highest committed counter (``high``) and the sorted,
  disjoint ranges of *uncommitted* counters below it (``gaps`` — the
  out-of-order exception set: Lamport counters consumed by reads,
  failed proposals, or commits that arrived out of order via gossip).
  Ids whose counter does not parse go into a small ``extras`` set so
  correctness never depends on the id format. Wire size is
  O(clients + gap ranges), independent of committed history.
* :class:`CommittedIndex` — the organization-side container: the
  watermark digest, an insertion-ordered id log (so snapshot /
  recovery call sites never re-sort or re-copy the full set), and a
  running order-independent state digest (XOR of per-id SHA-256,
  updated incrementally at commit time — replacing the old O(n)
  sort-and-join digest).

Set reconciliation between two digests (:func:`WatermarkDigest.
difference`) runs in O(clients + gaps + divergence) by interval
arithmetic on the covered ranges — it never enumerates counters both
sides already share.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple


def parse_txn_id(txn_id: str) -> Tuple[str, Optional[int]]:
    """Split ``client_id:counter``; counter is None if unparseable."""
    client, sep, counter = txn_id.rpartition(":")
    if sep and counter.isdigit():
        return client, int(counter)
    return txn_id, None


class _Mark:
    """One client's coverage: ``{1..high}`` minus ``gaps``."""

    __slots__ = ("high", "gaps")

    def __init__(self, high: int = 0, gaps: Optional[List[Tuple[int, int]]] = None) -> None:
        self.high = high
        # Sorted, disjoint, inclusive [lo, hi] ranges of uncommitted
        # counters strictly below ``high``.
        self.gaps: List[Tuple[int, int]] = gaps if gaps is not None else []

    def covered_intervals(self) -> List[Tuple[int, int]]:
        """Sorted disjoint inclusive intervals of committed counters."""
        out: List[Tuple[int, int]] = []
        start = 1
        for lo, hi in self.gaps:
            if lo > start:
                out.append((start, lo - 1))
            start = hi + 1
        if start <= self.high:
            out.append((start, self.high))
        return out


def _subtract_intervals(
    covered: List[Tuple[int, int]], minus: List[Tuple[int, int]]
) -> Iterator[Tuple[int, int]]:
    """Intervals in ``covered`` not overlapped by ``minus`` (both sorted)."""
    index = 0
    for lo, hi in covered:
        start = lo
        while index < len(minus) and minus[index][1] < start:
            index += 1
        scan = index
        while scan < len(minus) and minus[scan][0] <= hi:
            cut_lo, cut_hi = minus[scan]
            if cut_lo > start:
                yield (start, cut_lo - 1)
            start = max(start, cut_hi + 1)
            if start > hi:
                break
            scan += 1
        if start <= hi:
            yield (start, hi)


class WatermarkDigest:
    """Per-client watermark + gap-range summary of a txn-id set."""

    __slots__ = ("_marks", "extras", "count")

    def __init__(self) -> None:
        self._marks: Dict[str, _Mark] = {}
        # Ids that do not parse as client:int — kept verbatim so the
        # digest is lossless for any id shape.
        self.extras: Set[str] = set()
        self.count = 0

    # -- building ----------------------------------------------------------

    def add(self, txn_id: str) -> bool:
        """Record one committed id; returns False on a duplicate."""
        client, counter = parse_txn_id(txn_id)
        if counter is None:
            if txn_id in self.extras:
                return False
            self.extras.add(txn_id)
            self.count += 1
            return True
        mark = self._marks.get(client)
        if mark is None:
            mark = self._marks[client] = _Mark()
        if counter > mark.high:
            if counter > mark.high + 1:
                mark.gaps.append((mark.high + 1, counter - 1))
            mark.high = counter
            self.count += 1
            return True
        # Out-of-order arrival below the watermark: fill (part of) a gap.
        gaps = mark.gaps
        index = bisect_right(gaps, counter, key=lambda gap: gap[0]) - 1
        if index < 0 or gaps[index][1] < counter:
            return False  # already covered: duplicate
        lo, hi = gaps[index]
        replacement = []
        if lo < counter:
            replacement.append((lo, counter - 1))
        if counter < hi:
            replacement.append((counter + 1, hi))
        gaps[index : index + 1] = replacement
        self.count += 1
        return True

    # -- queries -----------------------------------------------------------

    def covers(self, txn_id: str) -> bool:
        client, counter = parse_txn_id(txn_id)
        if counter is None:
            return txn_id in self.extras
        mark = self._marks.get(client)
        if mark is None or counter > mark.high:
            return False
        gaps = mark.gaps
        index = bisect_right(gaps, counter, key=lambda gap: gap[0]) - 1
        return index < 0 or gaps[index][1] < counter

    def __contains__(self, txn_id: str) -> bool:
        return self.covers(txn_id)

    def __len__(self) -> int:
        return self.count

    @property
    def client_count(self) -> int:
        return len(self._marks)

    @property
    def gap_count(self) -> int:
        """Total gap ranges plus extras — the digest's variable cost."""
        return sum(len(mark.gaps) for mark in self._marks.values()) + len(self.extras)

    def ids(self) -> Iterator[str]:
        """Every covered id, canonically ordered (client, counter)."""
        for client in sorted(self._marks):
            for lo, hi in self._marks[client].covered_intervals():
                for counter in range(lo, hi + 1):
                    yield f"{client}:{counter}"
        yield from sorted(self.extras)

    def difference(self, other: "WatermarkDigest") -> Iterator[str]:
        """Ids covered by ``self`` but not by ``other``.

        Interval subtraction per client: O(clients + gap ranges +
        emitted ids); ranges both sides share are skipped wholesale.
        """
        for client in sorted(self._marks):
            mine = self._marks[client].covered_intervals()
            theirs_mark = other._marks.get(client)
            theirs = theirs_mark.covered_intervals() if theirs_mark is not None else []
            for lo, hi in _subtract_intervals(mine, theirs):
                for counter in range(lo, hi + 1):
                    yield f"{client}:{counter}"
        for txn_id in sorted(self.extras - other.extras):
            yield txn_id

    # -- wire form ---------------------------------------------------------

    def to_wire(self) -> Dict[str, Any]:
        return {
            "clients": {
                client: [mark.high, [list(gap) for gap in mark.gaps]]
                for client, mark in sorted(self._marks.items())
            },
            "extras": sorted(self.extras),
        }

    @classmethod
    def from_wire(cls, body: Dict[str, Any]) -> "WatermarkDigest":
        digest = cls()
        for client, (high, gaps) in body.get("clients", {}).items():
            mark = _Mark(high=high, gaps=[tuple(gap) for gap in gaps])
            digest._marks[client] = mark
            digest.count += high - sum(hi - lo + 1 for lo, hi in mark.gaps)
        for txn_id in body.get("extras", ()):
            digest.extras.add(txn_id)
            digest.count += 1
        return digest


class CommittedIndex:
    """Incremental commit-time bookkeeping for anti-entropy and snapshots.

    Maintained by :class:`~repro.core.organization.Organization` with
    one :meth:`add` per valid commit; every anti-entropy, snapshot, and
    recovery call site then reads O(clients + gaps) summaries instead
    of sorting or copying the full committed set.
    """

    __slots__ = ("watermarks", "log", "_acc")

    def __init__(self) -> None:
        self.watermarks = WatermarkDigest()
        # Insertion-ordered id log: snapshots remember a position and
        # recovery replays ``log[position:]`` — O(delta), no set diff.
        self.log: List[str] = []
        # Order-independent running digest: XOR of per-id SHA-256.
        self._acc = 0

    def add(self, txn_id: str) -> bool:
        if not self.watermarks.add(txn_id):
            return False
        self.log.append(txn_id)
        self._acc ^= int.from_bytes(
            hashlib.sha256(txn_id.encode("utf-8")).digest(), "big"
        )
        return True

    def __len__(self) -> int:
        return self.watermarks.count

    def __contains__(self, txn_id: str) -> bool:
        return txn_id in self.watermarks

    def state_digest(self) -> str:
        """Order-independent digest of the committed set, O(1) to read."""
        material = self._acc.to_bytes(32, "big") + len(self).to_bytes(8, "big")
        return hashlib.sha256(material).hexdigest()

    def missing_from(self, remote: WatermarkDigest) -> Iterator[str]:
        """Ids the remote digest covers that this index lacks."""
        return remote.difference(self.watermarks)

    def surplus_over(self, remote: WatermarkDigest) -> Iterator[str]:
        """Ids this index covers that the remote digest lacks."""
        return self.watermarks.difference(remote)


__all__ = ["CommittedIndex", "WatermarkDigest", "parse_txn_id"]
