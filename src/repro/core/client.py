"""An OrderlessChain client (Section 4's transaction lifecycle).

A client submits a proposal to ``q`` organizations, collects
endorsements, checks that all endorsed write-sets are identical,
assembles and signs the transaction, sends it to ``q`` organizations,
and waits for ``q`` receipts. Clients keep a Lamport clock that is
incremented with every submitted proposal (Section 6).

Clients can be configured to be Byzantine (the four fault types of
Section 8) and, for Figure 8(b), to observe and avoid Byzantine
organizations: organizations that do not respond or whose endorsements
disagree with the majority get blacklisted and replaced on retry.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.core.byzantine import ByzantineClientConfig
from repro.core.organization import (
    MSG_COMMIT,
    MSG_ENDORSEMENT,
    MSG_PROPOSAL,
    MSG_READ,
    MSG_READ_RESPONSE,
    MSG_RECEIPT,
)
from repro.core.perf import PerfModel
from repro.core.policy import EndorsementPolicy
from repro.core.recording import TransactionRecorder
from repro.core.transaction import (
    Endorsement,
    Proposal,
    Receipt,
    Transaction,
    write_set_digest,
)
from repro.crdt.clock import LamportClock
from repro.crypto.identity import Identity
from repro.net.message import Message
from repro.net.network import Network
from repro.sim.core import Simulator
from repro.sim.events import AnyOf, Event


@dataclass
class ClientConfig:
    """Client-side protocol knobs."""

    proposal_timeout: float = 3.0
    commit_timeout: float = 3.0
    read_timeout: float = 3.0
    max_retries: int = 0
    avoid_byzantine: bool = False  # Figure 8(b): blacklist misbehaving orgs
    org_weights: Optional[Sequence[float]] = None  # config 8: skewed load


class _Pending:
    """Responses collected for one in-flight request.

    Responses are deduplicated by sender so a duplicated message (the
    Section 3 failure model allows duplication in transit) cannot
    satisfy the quorum with fewer distinct organizations.
    """

    def __init__(self, sim: Simulator, needed: int) -> None:
        self.needed = needed
        self.responses: List[Any] = []
        self._senders: set = set()
        self.event = Event(sim)

    def add(self, response: Any, sender: Any = None) -> None:
        if sender is not None:
            if sender in self._senders:
                return
            self._senders.add(sender)
        self.responses.append(response)
        if len(self.responses) >= self.needed and not self.event.triggered:
            self.event.trigger(self.responses)


class Client:
    """One client node."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        identity: Identity,
        policy: EndorsementPolicy,
        org_ids: Sequence[str],
        perf: PerfModel,
        rng: random.Random,
        recorder: Optional[TransactionRecorder] = None,
        config: Optional[ClientConfig] = None,
        byzantine: Optional[ByzantineClientConfig] = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.identity = identity
        self.policy = policy
        self.org_ids = list(org_ids)
        self.perf = perf
        self.rng = rng
        self.recorder = recorder
        # Optional repro.obs recorder; when set, submissions emit
        # lifecycle spans and instants. Passive — see repro.sim.core.
        self.tracer = None
        self.config = config or ClientConfig()
        self.byzantine = byzantine
        self.clock = LamportClock(identity.identifier)
        self.blacklist: set[str] = set()
        self._pending_endorsements: Dict[str, _Pending] = {}
        self._pending_receipts: Dict[str, _Pending] = {}
        self._pending_reads: Dict[str, _Pending] = {}
        self.committed = 0
        self.failed = 0
        network.register(self.client_id, self._on_message)

    @property
    def client_id(self) -> str:
        return self.identity.identifier

    # -- message handling ------------------------------------------------

    def _on_message(self, message: Message) -> None:
        if message.corrupted:
            return  # garbage fails the transport integrity check
        if message.msg_type == MSG_ENDORSEMENT:
            endorsement = Endorsement.from_wire(message.body)
            pending = self._pending_endorsements.get(endorsement.proposal_id)
            if pending is not None:
                pending.add(endorsement, sender=endorsement.org_id)
        elif message.msg_type == MSG_RECEIPT:
            receipt = Receipt.from_wire(message.body)
            pending = self._pending_receipts.get(receipt.transaction_id)
            if pending is not None:
                pending.add(receipt, sender=receipt.org_id)
        elif message.msg_type == MSG_READ_RESPONSE:
            pending = self._pending_reads.get(message.body["proposal_id"])
            if pending is not None:
                pending.add(message.body["value"], sender=message.sender)

    # -- organization selection ----------------------------------------------

    def _select_orgs(self, count: int) -> List[str]:
        candidates = [org for org in self.org_ids if org not in self.blacklist]
        if len(candidates) < count:
            # Not enough trusted organizations left; fall back to all.
            candidates = list(self.org_ids)
        if self.config.org_weights is not None and len(self.config.org_weights) == len(
            self.org_ids
        ):
            weight_of = dict(zip(self.org_ids, self.config.org_weights))
            pool = list(candidates)
            chosen: List[str] = []
            while pool and len(chosen) < count:
                weights = [weight_of.get(org, 1.0) for org in pool]
                pick = self.rng.choices(pool, weights=weights, k=1)[0]
                pool.remove(pick)
                chosen.append(pick)
            return chosen
        return self.rng.sample(candidates, count)

    # -- tracing helpers ----------------------------------------------------------

    def _trace_submitted(self, txn_id: str, kind: str) -> None:
        if self.tracer is not None:
            self.tracer.instant(
                "txn/submitted",
                self.sim.now,
                node=self.client_id,
                txn_id=txn_id,
                attrs={"kind": kind},
            )

    def _trace_done(self, txn_id: str, started: float, kind: str, outcome: str) -> None:
        """Close a transaction's ``client/txn`` span and mark its fate."""
        if self.tracer is None:
            return
        committed = outcome == "committed"
        self.tracer.instant(
            "txn/committed" if committed else "txn/failed",
            self.sim.now,
            node=self.client_id,
            txn_id=txn_id,
            attrs=None if committed else {"reason": outcome},
        )
        self.tracer.span(
            "client/txn",
            started,
            self.sim.now,
            node=self.client_id,
            txn_id=txn_id,
            attrs={"kind": kind, "outcome": outcome},
        )

    # -- Byzantine helpers --------------------------------------------------------

    def _misbehaves(self, fault: str) -> bool:
        return (
            self.byzantine is not None
            and fault in self.byzantine.faults
            and self.rng.random() < self.byzantine.fault_probability
        )

    # -- modify transactions -----------------------------------------------------

    def submit_modify(self, contract_id: str, function: str, params: Dict[str, Any]):
        """Run one modify transaction through both phases.

        A generator to be run as a simulated process; returns ``True``
        on successful commit (q valid receipts).
        """
        q = self.policy.quorum
        no_increment = self._misbehaves("no_increment")
        clock = self.clock.peek() if no_increment else self.clock.tick()
        proposal = Proposal(self.client_id, contract_id, function, dict(params), clock)
        txn_id = proposal.proposal_id
        if self.recorder is not None and txn_id not in getattr(self.recorder, "records", {}):
            self.recorder.submitted(txn_id, self.client_id, "modify", self.sim.now)
        started = self.sim.now
        self._trace_submitted(txn_id, "modify")
        split_clock = self._misbehaves("split_clock")

        attempt = 0
        while True:
            attempt_started = self.sim.now
            targets = self._select_orgs(q)
            pending = _Pending(self.sim, needed=q)
            self._pending_endorsements[txn_id] = pending
            for index, org_id in enumerate(targets):
                body = proposal.to_wire()
                if split_clock and index > 0:
                    # Different logical timestamps to different orgs.
                    body = dict(body)
                    body["clock"] = {
                        "client_id": self.client_id,
                        "counter": clock.counter + index,
                    }
                self.network.send(
                    Message(
                        sender=self.client_id,
                        recipient=org_id,
                        msg_type=MSG_PROPOSAL,
                        body=body,
                        size_bytes=self.perf.proposal_bytes,
                    )
                )
            timeout = self.sim.timeout(self.config.proposal_timeout)
            yield AnyOf(self.sim, [pending.event, timeout])
            endorsements: List[Endorsement] = list(pending.responses)
            del self._pending_endorsements[txn_id]
            if self.tracer is not None:
                self.tracer.span(
                    "client/endorse_wait",
                    attempt_started,
                    self.sim.now,
                    node=self.client_id,
                    txn_id=txn_id,
                    attrs={"attempt": attempt, "endorsements": len(endorsements)},
                )

            majority = self._majority_write_set(endorsements)
            if majority is not None and len(majority) >= q:
                break  # enough identical endorsements
            if self.config.avoid_byzantine:
                self._blacklist_offenders(targets, endorsements, majority)
            attempt += 1
            if attempt > self.config.max_retries:
                self.failed += 1
                if self.recorder is not None:
                    self.recorder.failed(txn_id, self.sim.now, "endorsement failure")
                self._trace_done(txn_id, started, "modify", "endorsement failure")
                return False
            if self.recorder is not None:
                self.recorder.retried(txn_id)

        if self._misbehaves("proposal_only"):
            # DDoS-style fault: never send the commit. No lasting side
            # effects on the system (Section 8, fault 1).
            self.failed += 1
            if self.recorder is not None:
                self.recorder.failed(txn_id, self.sim.now, "byzantine: proposal only")
            self._trace_done(txn_id, started, "modify", "byzantine: proposal only")
            return False

        write_set = majority[0].write_set
        transaction = Transaction.assemble(
            self.identity, proposal, write_set, list(majority)
        )
        if self._misbehaves("tamper"):
            tampered = [dict(op) for op in write_set]
            for op in tampered:
                if op["value_type"] == "gcounter":
                    op["value"] = (op["value"] or 0) + 999
                else:
                    op["value"] = "<client-tampered>"
            transaction = Transaction.assemble(
                self.identity, proposal, tampered, list(majority)
            )

        commit_targets = self._select_orgs(q)
        if self._misbehaves("partial_commit"):
            commit_targets = commit_targets[:1]
        commit_started = self.sim.now
        pending = _Pending(self.sim, needed=min(q, len(commit_targets)))
        self._pending_receipts[txn_id] = pending
        wire = transaction.to_wire()
        for org_id in commit_targets:
            self.network.send(
                Message(
                    sender=self.client_id,
                    recipient=org_id,
                    msg_type=MSG_COMMIT,
                    body=wire,
                    size_bytes=transaction.wire_size(),
                )
            )
        timeout = self.sim.timeout(self.config.commit_timeout)
        yield AnyOf(self.sim, [pending.event, timeout])
        receipts: List[Receipt] = list(pending.responses)
        del self._pending_receipts[txn_id]
        if self.tracer is not None:
            self.tracer.span(
                "client/commit_wait",
                commit_started,
                self.sim.now,
                node=self.client_id,
                txn_id=txn_id,
                attrs={"receipts": len(receipts)},
            )

        valid_orgs = {r.org_id for r in receipts if r.valid}
        rejections = [r for r in receipts if not r.valid]
        if len(valid_orgs) >= q:
            self.committed += 1
            if self.recorder is not None:
                self.recorder.committed(txn_id, self.sim.now)
            self._trace_done(txn_id, started, "modify", "committed")
            return True
        self.failed += 1
        if self.recorder is not None:
            reason = "rejected" if rejections else "commit timeout"
            self.recorder.failed(txn_id, self.sim.now, reason)
        self._trace_done(
            txn_id, started, "modify", "rejected" if rejections else "commit timeout"
        )
        return False

    @staticmethod
    def _majority_write_set(
        endorsements: List[Endorsement],
    ) -> Optional[List[Endorsement]]:
        """Largest group of endorsements with identical write-sets."""
        if not endorsements:
            return None
        groups: Dict[str, List[Endorsement]] = {}
        for endorsement in endorsements:
            groups.setdefault(write_set_digest(endorsement.write_set), []).append(endorsement)
        return max(groups.values(), key=len)

    def _blacklist_offenders(
        self,
        targets: Sequence[str],
        endorsements: List[Endorsement],
        majority: Optional[List[Endorsement]],
    ) -> None:
        """Figure 8(b): avoid orgs that did not respond or disagreed."""
        responded = {e.org_id for e in endorsements}
        agreeing = {e.org_id for e in (majority or [])}
        for org_id in targets:
            if org_id not in responded or (org_id in responded and org_id not in agreeing):
                self.blacklist.add(org_id)

    # -- read transactions -----------------------------------------------------------

    def submit_read(self, contract_id: str, function: str, params: Dict[str, Any]):
        """Run one read transaction; returns the responses (or None)."""
        q = self.policy.quorum
        clock = self.clock.tick()
        proposal = Proposal(self.client_id, contract_id, function, dict(params), clock)
        txn_id = proposal.proposal_id
        if self.recorder is not None:
            self.recorder.submitted(txn_id, self.client_id, "read", self.sim.now)
        started = self.sim.now
        self._trace_submitted(txn_id, "read")
        targets = self._select_orgs(q)
        pending = _Pending(self.sim, needed=q)
        self._pending_reads[txn_id] = pending
        for org_id in targets:
            self.network.send(
                Message(
                    sender=self.client_id,
                    recipient=org_id,
                    msg_type=MSG_READ,
                    body=proposal.to_wire(),
                    size_bytes=self.perf.proposal_bytes,
                )
            )
        timeout = self.sim.timeout(self.config.read_timeout)
        winner = yield AnyOf(self.sim, [pending.event, timeout])
        values = list(pending.responses)
        del self._pending_reads[txn_id]
        if self.tracer is not None:
            self.tracer.span(
                "client/read_wait",
                started,
                self.sim.now,
                node=self.client_id,
                txn_id=txn_id,
                attrs={"responses": len(values)},
            )
        if winner is pending.event:
            self.committed += 1
            if self.recorder is not None:
                self.recorder.committed(txn_id, self.sim.now)
            self._trace_done(txn_id, started, "read", "committed")
            return values
        self.failed += 1
        if self.recorder is not None:
            self.recorder.failed(txn_id, self.sim.now, "read timeout")
        self._trace_done(txn_id, started, "read", "read timeout")
        return None


__all__ = ["Client", "ClientConfig"]
