"""An OrderlessChain client (Section 4's transaction lifecycle).

A client submits a proposal to ``q`` organizations, collects
endorsements, checks that all endorsed write-sets are identical,
assembles and signs the transaction, sends it to ``q`` organizations,
and waits for ``q`` receipts. Clients keep a Lamport clock that is
incremented with every submitted proposal (Section 6).

Clients can be configured to be Byzantine (the four fault types of
Section 8) and, for Figure 8(b), to observe and avoid Byzantine
organizations: organizations that do not respond or whose endorsements
disagree with the majority get blacklisted and replaced on retry.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.core.byzantine import ByzantineClientConfig
from repro.core.organization import (
    MSG_COMMIT,
    MSG_ENDORSEMENT,
    MSG_PROPOSAL,
    MSG_READ,
    MSG_READ_RESPONSE,
    MSG_RECEIPT,
)
from repro.core.perf import PerfModel
from repro.core.policy import EndorsementPolicy
from repro.core.recording import TransactionRecorder
from repro.core.transaction import (
    Endorsement,
    Proposal,
    Receipt,
    Transaction,
    write_set_digest,
)
from repro.crdt.clock import LamportClock
from repro.crypto.identity import Identity
from repro.net.message import Message
from repro.net.network import Network
from repro.resilience import CircuitBreaker, ResilienceConfig, RttEstimator
from repro.sim.core import Simulator
from repro.sim.events import AnyOf, Event


@dataclass
class ClientConfig:
    """Client-side protocol knobs."""

    proposal_timeout: float = 3.0
    commit_timeout: float = 3.0
    read_timeout: float = 3.0
    max_retries: int = 0
    avoid_byzantine: bool = False  # Figure 8(b): blacklist misbehaving orgs
    org_weights: Optional[Sequence[float]] = None  # config 8: skewed load
    # Adaptive resilience (docs/RESILIENCE.md): RTT-aware deadlines,
    # hedged solicitation, and per-org circuit breakers. None keeps the
    # fixed timeouts above and the legacy event order byte-identical.
    resilience: Optional[ResilienceConfig] = None


class _Pending:
    """Responses collected for one in-flight request.

    Responses are deduplicated by sender so a duplicated message (the
    Section 3 failure model allows duplication in transit) cannot
    satisfy the quorum with fewer distinct organizations. Arrival
    times are recorded for the RTT estimator (pure bookkeeping — no
    events, so untouched runs stay byte-identical).
    """

    def __init__(self, sim: Simulator, needed: int) -> None:
        self.needed = needed
        self.responses: List[Any] = []
        self.arrivals: List[float] = []
        self._sim = sim
        self._senders: set = set()
        self.event = Event(sim)

    def add(self, response: Any, sender: Any = None) -> None:
        if sender is not None:
            if sender in self._senders:
                return
            self._senders.add(sender)
        self.responses.append(response)
        self.arrivals.append(self._sim.now)
        if len(self.responses) >= self.needed and not self.event.triggered:
            self.event.trigger(self.responses)


class Client:
    """One client node."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        identity: Identity,
        policy: EndorsementPolicy,
        org_ids: Sequence[str],
        perf: PerfModel,
        rng: random.Random,
        recorder: Optional[TransactionRecorder] = None,
        config: Optional[ClientConfig] = None,
        byzantine: Optional[ByzantineClientConfig] = None,
        resilience_rng: Optional[random.Random] = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.identity = identity
        self.policy = policy
        self.org_ids = list(org_ids)
        self.perf = perf
        self.rng = rng
        self.recorder = recorder
        # Optional repro.obs recorder; when set, submissions emit
        # lifecycle spans and instants. Passive — see repro.sim.core.
        self.tracer = None
        self.config = config or ClientConfig()
        self.byzantine = byzantine
        self.clock = LamportClock(identity.identifier)
        self.blacklist: set[str] = set()
        self._pending_endorsements: Dict[str, _Pending] = {}
        self._pending_receipts: Dict[str, _Pending] = {}
        self._pending_reads: Dict[str, _Pending] = {}
        self.committed = 0
        self.failed = 0
        # Adaptive resilience state (None-resilience clients never touch
        # any of this, keeping the legacy event order byte-identical).
        # Jitter draws come from a dedicated stream so resilience-on
        # runs are deterministic per seed (docs/RESILIENCE.md).
        self._res_rng = resilience_rng if resilience_rng is not None else rng
        self._rtt = (
            RttEstimator(self.config.resilience)
            if self.config.resilience is not None
            else None
        )
        self.breakers: Dict[str, CircuitBreaker] = {}
        network.register(self.client_id, self._on_message)

    @property
    def client_id(self) -> str:
        return self.identity.identifier

    # -- message handling ------------------------------------------------

    def _on_message(self, message: Message) -> None:
        if message.corrupted:
            return  # garbage fails the transport integrity check
        if message.msg_type == MSG_ENDORSEMENT:
            endorsement = Endorsement.from_wire(message.body)
            pending = self._pending_endorsements.get(endorsement.proposal_id)
            if pending is not None:
                pending.add(endorsement, sender=endorsement.org_id)
        elif message.msg_type == MSG_RECEIPT:
            receipt = Receipt.from_wire(message.body)
            pending = self._pending_receipts.get(receipt.transaction_id)
            if pending is not None:
                pending.add(receipt, sender=receipt.org_id)
        elif message.msg_type == MSG_READ_RESPONSE:
            pending = self._pending_reads.get(message.body["proposal_id"])
            if pending is not None:
                pending.add(message.body["value"], sender=message.sender)

    # -- organization selection ----------------------------------------------

    def _breaker(self, org_id: str) -> CircuitBreaker:
        breaker = self.breakers.get(org_id)
        if breaker is None:
            res = self.config.resilience or ResilienceConfig()
            breaker = CircuitBreaker(
                org_id,
                threshold=res.breaker_threshold,
                cooldown=res.breaker_cooldown,
                probes=res.breaker_probes,
                clock=lambda: self.sim.now,
                on_transition=self._trace_breaker,
            )
            self.breakers[org_id] = breaker
        return breaker

    def _select_orgs(self, count: int, avoid: Sequence[str] = ()) -> List[str]:
        candidates = [org for org in self.org_ids if org not in self.blacklist]
        if self.config.resilience is not None:
            # Circuit breakers: skip orgs whose breaker is open (unless
            # that would leave us short of a quorum's worth of targets).
            healthy = [org for org in candidates if self._breaker(org).allows_request()]
            if len(healthy) >= count:
                candidates = healthy
        if len(candidates) < count:
            # Not enough trusted organizations left; fall back to all.
            candidates = list(self.org_ids)
        if self.config.org_weights is not None and len(self.config.org_weights) == len(
            self.org_ids
        ):
            weight_of = dict(zip(self.org_ids, self.config.org_weights))
            pool = list(candidates)
            chosen: List[str] = []
            while pool and len(chosen) < count:
                weights = [weight_of.get(org, 1.0) for org in pool]
                pick = self.rng.choices(pool, weights=weights, k=1)[0]
                pool.remove(pick)
                chosen.append(pick)
            return chosen
        if avoid:
            # Retry retargeting: prefer organizations not yet contacted
            # for this transaction (docs/RESILIENCE.md).
            avoided = set(avoid)
            fresh = [org for org in candidates if org not in avoided]
            if len(fresh) >= count:
                return self.rng.sample(fresh, count)
            rest = self.rng.sample(
                [org for org in candidates if org in avoided], count - len(fresh)
            )
            return fresh + rest
        return self.rng.sample(candidates, count)

    # -- tracing helpers ----------------------------------------------------------

    def _trace_submitted(self, txn_id: str, kind: str) -> None:
        if self.tracer is not None:
            self.tracer.instant(
                "txn/submitted",
                self.sim.now,
                node=self.client_id,
                txn_id=txn_id,
                attrs={"kind": kind},
            )

    def _trace_done(self, txn_id: str, started: float, kind: str, outcome: str) -> None:
        """Close a transaction's ``client/txn`` span and mark its fate."""
        if self.tracer is None:
            return
        committed = outcome == "committed"
        self.tracer.instant(
            "txn/committed" if committed else "txn/failed",
            self.sim.now,
            node=self.client_id,
            txn_id=txn_id,
            attrs=None if committed else {"reason": outcome},
        )
        self.tracer.span(
            "client/txn",
            started,
            self.sim.now,
            node=self.client_id,
            txn_id=txn_id,
            attrs={"kind": kind, "outcome": outcome},
        )

    def _trace_breaker(self, org_id: str, old_state: str, new_state: str) -> None:
        if self.tracer is not None:
            self.tracer.instant(
                "breaker/transition",
                self.sim.now,
                node=self.client_id,
                attrs={"org": org_id, "from": old_state, "to": new_state},
            )

    def _trace_retry(self, txn_id: str, phase: str, attempt: int) -> None:
        if self.tracer is not None:
            self.tracer.instant(
                "client/retry",
                self.sim.now,
                node=self.client_id,
                txn_id=txn_id,
                attrs={"phase": phase, "attempt": attempt},
            )

    def _trace_backoff(self, txn_id: str, started: float, attempt: int, deadline: float) -> None:
        """A timed-out wait window that will be retried with backoff."""
        if self.tracer is not None:
            self.tracer.span(
                "client/backoff",
                started,
                self.sim.now,
                node=self.client_id,
                txn_id=txn_id,
                attrs={"attempt": attempt, "deadline": round(deadline, 6)},
            )

    # -- adaptive resilience helpers ----------------------------------------------

    def _deadline(self, phase: str, attempt: int) -> float:
        """The wait deadline for one attempt of one phase."""
        res = self.config.resilience
        if res is None or self._rtt is None:
            return {
                "endorse": self.config.proposal_timeout,
                "commit": self.config.commit_timeout,
                "read": self.config.read_timeout,
            }[phase]
        return self._rtt.timeout_for(attempt, self._res_rng)

    def _observe_rtts(self, pending: _Pending, sent_at: float, seen: int = 0) -> None:
        """Feed round-trips measured since ``sent_at`` to the estimator."""
        if self._rtt is None:
            return
        for arrived in pending.arrivals[seen:]:
            self._rtt.observe(arrived - sent_at)

    def _record_attempt_outcome(self, targets: Sequence[str], responded: set) -> None:
        """Update circuit breakers after one solicitation attempt."""
        if self.config.resilience is None:
            return
        for org_id in targets:
            breaker = self._breaker(org_id)
            if org_id in responded:
                breaker.record_success()
            else:
                breaker.record_failure()

    def _hedged_count(self, q: int) -> int:
        res = self.config.resilience
        if res is None:
            return q
        return min(len(self.org_ids), q + res.hedge)

    # -- Byzantine helpers --------------------------------------------------------

    def _misbehaves(self, fault: str) -> bool:
        return (
            self.byzantine is not None
            and fault in self.byzantine.faults
            and self.rng.random() < self.byzantine.fault_probability
        )

    # -- modify transactions -----------------------------------------------------

    def submit_modify(self, contract_id: str, function: str, params: Dict[str, Any]):
        """Run one modify transaction through both phases.

        A generator to be run as a simulated process; returns ``True``
        on successful commit (q valid receipts).
        """
        q = self.policy.quorum
        no_increment = self._misbehaves("no_increment")
        clock = self.clock.peek() if no_increment else self.clock.tick()
        proposal = Proposal(self.client_id, contract_id, function, dict(params), clock)
        txn_id = proposal.proposal_id
        if self.recorder is not None and txn_id not in getattr(self.recorder, "records", {}):
            self.recorder.submitted(txn_id, self.client_id, "modify", self.sim.now)
        started = self.sim.now
        self._trace_submitted(txn_id, "modify")
        split_clock = self._misbehaves("split_clock")

        res = self.config.resilience
        used: set = set()  # orgs contacted so far (resilience retargeting)
        attempt = 0
        while True:
            attempt_started = self.sim.now
            if res is not None:
                # Hedged solicitation: contact q + hedge organizations,
                # preferring ones not yet tried for this transaction.
                targets = self._select_orgs(self._hedged_count(q), avoid=sorted(used))
                used.update(targets)
                for org_id in targets:
                    self._breaker(org_id).record_sent()
            else:
                targets = self._select_orgs(q)
            pending = _Pending(self.sim, needed=q)
            self._pending_endorsements[txn_id] = pending
            for index, org_id in enumerate(targets):
                body = proposal.to_wire()
                if split_clock and index > 0:
                    # Different logical timestamps to different orgs.
                    body = dict(body)
                    body["clock"] = {
                        "client_id": self.client_id,
                        "counter": clock.counter + index,
                    }
                self.network.send(
                    Message(
                        sender=self.client_id,
                        recipient=org_id,
                        msg_type=MSG_PROPOSAL,
                        body=body,
                        size_bytes=self.perf.proposal_bytes,
                    )
                )
            deadline = self._deadline("endorse", attempt)
            timeout = self.sim.timeout(deadline)
            winner = yield AnyOf(self.sim, [pending.event, timeout])
            endorsements: List[Endorsement] = list(pending.responses)
            del self._pending_endorsements[txn_id]
            self._observe_rtts(pending, attempt_started)
            if res is not None:
                responded = {e.org_id for e in endorsements}
                if winner is pending.event:
                    # Quorum reached early: slower hedged targets are not
                    # failures, they were simply not needed.
                    self._record_attempt_outcome(sorted(responded), responded)
                else:
                    self._record_attempt_outcome(targets, responded)
            if self.tracer is not None:
                self.tracer.span(
                    "client/endorse_wait",
                    attempt_started,
                    self.sim.now,
                    node=self.client_id,
                    txn_id=txn_id,
                    attrs={"attempt": attempt, "endorsements": len(endorsements)},
                )

            majority = self._majority_write_set(endorsements)
            if majority is not None and len(majority) >= q:
                break  # enough identical endorsements
            if self.config.avoid_byzantine:
                self._blacklist_offenders(targets, endorsements, majority)
            attempt += 1
            if attempt > self.config.max_retries:
                self.failed += 1
                if self.recorder is not None:
                    self.recorder.failed(txn_id, self.sim.now, "endorsement failure")
                self._trace_done(txn_id, started, "modify", "endorsement failure")
                return False
            self._trace_backoff(txn_id, attempt_started, attempt - 1, deadline)
            self._trace_retry(txn_id, "endorse", attempt)
            if self.recorder is not None:
                self.recorder.retried(txn_id)

        if self._misbehaves("proposal_only"):
            # DDoS-style fault: never send the commit. No lasting side
            # effects on the system (Section 8, fault 1).
            self.failed += 1
            if self.recorder is not None:
                self.recorder.failed(txn_id, self.sim.now, "byzantine: proposal only")
            self._trace_done(txn_id, started, "modify", "byzantine: proposal only")
            return False

        write_set = majority[0].write_set
        transaction = Transaction.assemble(
            self.identity, proposal, write_set, list(majority)
        )
        if self._misbehaves("tamper"):
            tampered = [dict(op) for op in write_set]
            for op in tampered:
                if op["value_type"] == "gcounter":
                    op["value"] = (op["value"] or 0) + 999
                else:
                    op["value"] = "<client-tampered>"
            transaction = Transaction.assemble(
                self.identity, proposal, tampered, list(majority)
            )

        partial_commit = self._misbehaves("partial_commit")
        wire = transaction.to_wire()
        commit_started = self.sim.now
        if res is not None and not partial_commit:
            # Retry loop: receipts accumulate across attempts (deduped by
            # sender) and each retry re-targets fresh organizations. The
            # transaction commits durably on the org side, so re-sending
            # the same signed wire is safe — MSG_COMMIT is idempotent.
            contacted: set = set()
            pending = _Pending(self.sim, needed=q)
            self._pending_receipts[txn_id] = pending
            commit_attempt = 0
            while True:
                attempt_started = self.sim.now
                targets = self._select_orgs(self._hedged_count(q), avoid=sorted(contacted))
                contacted.update(targets)
                for org_id in targets:
                    self._breaker(org_id).record_sent()
                for org_id in targets:
                    self.network.send(
                        Message(
                            sender=self.client_id,
                            recipient=org_id,
                            msg_type=MSG_COMMIT,
                            body=wire,
                            size_bytes=transaction.wire_size(),
                        )
                    )
                deadline = self._deadline("commit", commit_attempt)
                seen = len(pending.arrivals)
                timeout = self.sim.timeout(deadline)
                winner = yield AnyOf(self.sim, [pending.event, timeout])
                self._observe_rtts(pending, attempt_started, seen)
                responded = {r.org_id for r in pending.responses}
                if winner is pending.event:
                    self._record_attempt_outcome(sorted(responded), responded)
                    break
                self._record_attempt_outcome(targets, responded)
                commit_attempt += 1
                if commit_attempt > self.config.max_retries:
                    break
                self._trace_backoff(txn_id, attempt_started, commit_attempt - 1, deadline)
                self._trace_retry(txn_id, "commit", commit_attempt)
                if self.recorder is not None:
                    self.recorder.retried(txn_id)
        else:
            commit_targets = self._select_orgs(q)
            if partial_commit:
                commit_targets = commit_targets[:1]
            pending = _Pending(self.sim, needed=min(q, len(commit_targets)))
            self._pending_receipts[txn_id] = pending
            for org_id in commit_targets:
                self.network.send(
                    Message(
                        sender=self.client_id,
                        recipient=org_id,
                        msg_type=MSG_COMMIT,
                        body=wire,
                        size_bytes=transaction.wire_size(),
                    )
                )
            timeout = self.sim.timeout(self.config.commit_timeout)
            yield AnyOf(self.sim, [pending.event, timeout])
        receipts: List[Receipt] = list(pending.responses)
        del self._pending_receipts[txn_id]
        if self.tracer is not None:
            self.tracer.span(
                "client/commit_wait",
                commit_started,
                self.sim.now,
                node=self.client_id,
                txn_id=txn_id,
                attrs={"receipts": len(receipts)},
            )

        valid_orgs = {r.org_id for r in receipts if r.valid}
        rejections = [r for r in receipts if not r.valid]
        if len(valid_orgs) >= q:
            self.committed += 1
            if self.recorder is not None:
                self.recorder.committed(txn_id, self.sim.now)
            self._trace_done(txn_id, started, "modify", "committed")
            return True
        self.failed += 1
        if self.recorder is not None:
            reason = "rejected" if rejections else "commit timeout"
            self.recorder.failed(txn_id, self.sim.now, reason)
        self._trace_done(
            txn_id, started, "modify", "rejected" if rejections else "commit timeout"
        )
        return False

    @staticmethod
    def _majority_write_set(
        endorsements: List[Endorsement],
    ) -> Optional[List[Endorsement]]:
        """Largest group of endorsements with identical write-sets."""
        if not endorsements:
            return None
        groups: Dict[str, List[Endorsement]] = {}
        for endorsement in endorsements:
            groups.setdefault(write_set_digest(endorsement.write_set), []).append(endorsement)
        return max(groups.values(), key=len)

    def _blacklist_offenders(
        self,
        targets: Sequence[str],
        endorsements: List[Endorsement],
        majority: Optional[List[Endorsement]],
    ) -> None:
        """Figure 8(b): avoid orgs that did not respond or disagreed."""
        agreeing = {e.org_id for e in (majority or [])}
        for org_id in targets:
            # Both silent orgs and disagreeing responders are offenders;
            # only members of the majority group are in the clear.
            if org_id not in agreeing:
                self.blacklist.add(org_id)

    # -- read transactions -----------------------------------------------------------

    def submit_read(self, contract_id: str, function: str, params: Dict[str, Any]):
        """Run one read transaction; returns the responses (or None)."""
        q = self.policy.quorum
        clock = self.clock.tick()
        proposal = Proposal(self.client_id, contract_id, function, dict(params), clock)
        txn_id = proposal.proposal_id
        if self.recorder is not None:
            self.recorder.submitted(txn_id, self.client_id, "read", self.sim.now)
        started = self.sim.now
        self._trace_submitted(txn_id, "read")
        res = self.config.resilience
        if res is not None:
            targets = self._select_orgs(self._hedged_count(q))
            for org_id in targets:
                self._breaker(org_id).record_sent()
        else:
            targets = self._select_orgs(q)
        pending = _Pending(self.sim, needed=q)
        self._pending_reads[txn_id] = pending
        for org_id in targets:
            self.network.send(
                Message(
                    sender=self.client_id,
                    recipient=org_id,
                    msg_type=MSG_READ,
                    body=proposal.to_wire(),
                    size_bytes=self.perf.proposal_bytes,
                )
            )
        timeout = self.sim.timeout(self._deadline("read", 0))
        winner = yield AnyOf(self.sim, [pending.event, timeout])
        values = list(pending.responses)
        del self._pending_reads[txn_id]
        self._observe_rtts(pending, started)
        if res is not None:
            responded = set(pending._senders)
            if winner is pending.event:
                self._record_attempt_outcome(sorted(responded), responded)
            else:
                self._record_attempt_outcome(targets, responded)
        if self.tracer is not None:
            self.tracer.span(
                "client/read_wait",
                started,
                self.sim.now,
                node=self.client_id,
                txn_id=txn_id,
                attrs={"responses": len(values)},
            )
        if winner is pending.event:
            self.committed += 1
            if self.recorder is not None:
                self.recorder.committed(txn_id, self.sim.now)
            self._trace_done(txn_id, started, "read", "committed")
            return values
        self.failed += 1
        if self.recorder is not None:
            self.recorder.failed(txn_id, self.sim.now, "read timeout")
        self._trace_done(txn_id, started, "read", "read timeout")
        return None


__all__ = ["Client", "ClientConfig"]
