"""An OrderlessChain organization (Sections 4 and 6).

Organizations host smart contracts, endorse proposals (phase 1),
validate and commit transactions (phase 2), maintain the application
ledger (hash-chain log + database + CRDT value cache), and gossip
committed transactions to other organizations.

Resource model: each organization owns a CPU with ``vcpus`` slots and a
single cache lock. Endorsement and validation occupy the CPU; applying
operations to the CRDT cache and serving cached reads hold the cache
lock (the paper's serialization point — Section 9's discussion of
bounded CPU use and the locking limitation).
"""

from __future__ import annotations

import random
from typing import Any, Dict, Iterable, List, Optional

from repro.core.antientropy import WatermarkDigest
from repro.core.byzantine import ByzantineOrgConfig
from repro.core.channel import DEFAULT_CHANNEL, ChannelState, scoped_contract_id
from repro.core.contract import ContractContext, SmartContract, StateReader
from repro.core.perf import PerfModel
from repro.core.policy import EndorsementPolicy
from repro.core.recording import TransactionRecorder
from repro.core.transaction import Endorsement, Proposal, Receipt, Transaction
from repro.crypto.identity import CertificateAuthority, Identity
from repro.errors import ContractError, CRDTError
from repro.net.message import Message
from repro.net.network import Network
from repro.sim.core import Simulator
from repro.sim.resources import Lock, Resource

MSG_PROPOSAL = "orderless.proposal"
MSG_ENDORSEMENT = "orderless.endorsement"
MSG_COMMIT = "orderless.commit"
MSG_RECEIPT = "orderless.receipt"
MSG_GOSSIP = "orderless.gossip"
MSG_READ = "orderless.read"
MSG_READ_RESPONSE = "orderless.read_response"
MSG_SYNC_DIGEST = "orderless.sync_digest"
MSG_SYNC_REQUEST = "orderless.sync_request"


class Organization:
    """One organization node running the OrderlessChain protocol."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        identity: Identity,
        ca: CertificateAuthority,
        policy: EndorsementPolicy,
        perf: PerfModel,
        rng: random.Random,
        recorder: Optional[TransactionRecorder] = None,
        cache_enabled: bool = True,
        gossip_interval: float = 1.0,
        gossip_fanout: int = 1,
        gossip_ttl: int = 3,
        sync_interval: float = 5.0,
        snapshot_interval: float = 0.0,
        legacy_digests: bool = False,
    ) -> None:
        self.sim = sim
        self.network = network
        self.identity = identity
        self.ca = ca
        self.policy = policy
        self.perf = perf
        self.rng = rng
        self.recorder = recorder
        # Optional repro.obs recorder; when set, the endorse and commit
        # paths emit lifecycle spans. Passive: no randomness, no state
        # changes, no extra events (see repro.sim.core).
        self.tracer = None
        # Per-channel sharded state (repro.core.channel): each channel
        # owns its own ledger, gossip backlog, committed index, and
        # snapshot. The implicit default channel's objects double as
        # the legacy single-channel attributes below, so existing code
        # (tests, adapters, extensions) keeps working unchanged.
        self._cache_enabled = cache_enabled
        default_channel = ChannelState(DEFAULT_CHANNEL, cache_enabled=cache_enabled)
        self.channels: Dict[str, ChannelState] = {DEFAULT_CHANNEL: default_channel}
        # contract id -> channel id routing map; proposals, commits,
        # gossip, and reads are steered to a channel by contract id.
        self._contract_channel: Dict[str, str] = {}
        self.ledger = default_channel.ledger
        self.cpu = Resource(sim, capacity=perf.vcpus)
        self.cache_lock = Lock(sim)
        # Global contract registry across all channels (endorsement
        # dispatch); per-channel registries live on the ChannelState.
        self.contracts: Dict[str, SmartContract] = {}
        self.peer_ids: List[str] = []
        self.gossip_interval = gossip_interval
        self.gossip_fanout = gossip_fanout
        self.gossip_ttl = max(1, gossip_ttl)
        # Anti-entropy: periodic digest exchange with a random peer so
        # replicas reconcile even after push-gossip rounds are spent
        # (e.g. across a healed partition). 0 disables it.
        self.sync_interval = sync_interval
        self._valid_txn_wire = default_channel.valid_txn_wire
        # Watermark-based anti-entropy (repro.core.antientropy): the
        # committed set summarized incrementally at commit time as
        # per-client watermarks + gap ranges, an insertion-ordered id
        # log, and a running order-independent state digest — so no
        # sync/snapshot/recovery call site ever sorts or copies the
        # full set. ``legacy_digests=True`` keeps the old full-set
        # digest wire format (byte-identical event order) for A/B
        # ablations; the index is maintained either way.
        self.legacy_digests = legacy_digests
        self._commit_index = default_channel.commit_index
        # Snapshot-based crash recovery (docs/RESILIENCE.md): with a
        # positive interval, a background loop periodically checkpoints
        # the committed-transaction set; recover() then replays only
        # the delta since the checkpoint and runs *targeted*
        # anti-entropy instead of the full-broadcast resync. 0 (the
        # default) disables it and keeps the legacy path byte-identical.
        self.snapshot_interval = snapshot_interval
        self.snapshots_taken = 0
        self.last_recovery_mode: Optional[str] = None
        # Byzantine state: a config plus an on/off switch the experiment
        # timeline flips (Figure 8's f:1 -> f:2 -> f:3 -> f:0 windows).
        self.byzantine: Optional[ByzantineOrgConfig] = None
        self.byzantine_active = False
        # Extension points: pluggable message handlers (protocol
        # extensions register their message types here) and commit
        # guards (callables returning a rejection reason or None) — the
        # hook the Discussion's coordination extension uses.
        self.extension_handlers: Dict[str, Any] = {}
        self.commit_guards: List[Any] = []
        # Proposal guards run before endorsement; returning False drops
        # the proposal (the Section 8 DDoS-detection hook).
        self.proposal_guards: List[Any] = []
        # Valid transaction ids per touched object (used by sealing).
        self._txns_by_object = default_channel.txns_by_object
        # Fail-stop crash flag (set by the fault-injection layer in
        # tandem with ``Network.crash``): a crashed organization ignores
        # incoming messages and skips its background loops. Compute
        # already in progress finishes — fail-stop at message
        # boundaries, matching the network's crash semantics.
        self.crashed = False
        # Counters for assertions and reporting.
        self.endorsed_count = 0
        self.committed_valid = 0
        self.committed_invalid = 0
        self.gossip_commits = 0
        self.dropped_requests = 0
        network.register(self.org_id, self._on_message)

    @property
    def org_id(self) -> str:
        return self.identity.identifier

    # -- channels (repro.core.channel) -----------------------------------

    @property
    def _multichannel(self) -> bool:
        """More than one channel exists; wire bodies then carry the
        channel id so digests and sync requests route to the right
        shard. Single-channel bodies stay byte-identical to the legacy
        format."""
        return len(self.channels) > 1

    @property
    def _gossip_backlog(self) -> List[tuple[Dict[str, Any], int]]:
        """Legacy alias: the default channel's gossip backlog."""
        return self.channels[DEFAULT_CHANNEL].gossip_backlog

    @property
    def _snapshot(self) -> Optional[Dict[str, Any]]:
        """Legacy alias: the default channel's recovery snapshot."""
        return self.channels[DEFAULT_CHANNEL].snapshot

    def create_channel(self, channel_id: str) -> ChannelState:
        """Create (or return) the named channel's state shard."""
        channel = self.channels.get(channel_id)
        if channel is None:
            channel = ChannelState(channel_id, cache_enabled=self._cache_enabled)
            self.channels[channel_id] = channel
        return channel

    def _channel_of(self, contract_id: str) -> ChannelState:
        """The channel a contract id routes to (default if unknown)."""
        return self.channels[self._contract_channel.get(contract_id, DEFAULT_CHANNEL)]

    # -- setup ---------------------------------------------------------

    def install_contract(
        self, contract: SmartContract, channel: str = DEFAULT_CHANNEL
    ) -> None:
        state = self.create_channel(channel)
        contract.contract_id = scoped_contract_id(channel, contract.contract_id)
        state.contracts[contract.contract_id] = contract
        self.contracts[contract.contract_id] = contract
        self._contract_channel[contract.contract_id] = channel

    def set_peers(self, org_ids: List[str]) -> None:
        self.peer_ids = [org_id for org_id in org_ids if org_id != self.org_id]

    def start(self) -> None:
        """Launch background processes: gossip (step 5) + anti-entropy."""
        self.sim.process(self._gossip_loop(), name=f"{self.org_id}.gossip")
        if self.sync_interval > 0:
            self.sim.process(self._antientropy_loop(), name=f"{self.org_id}.sync")
        if self.snapshot_interval > 0:
            self.sim.process(self._snapshot_loop(), name=f"{self.org_id}.snapshot")

    # -- message dispatch -------------------------------------------------

    def _on_message(self, message: Message) -> None:
        if self.crashed:
            # Normally unreachable (the network drops traffic to a
            # crashed node) but guards direct handler calls from
            # protocol extensions.
            self.dropped_requests += 1
            return
        if message.corrupted:
            # Transport-level integrity check fails; garbage is dropped
            # (the sender may retransmit or the client times out).
            self.dropped_requests += 1
            return
        if message.msg_type == MSG_PROPOSAL:
            self.sim.process(self._handle_proposal(message), name=f"{self.org_id}.endorse")
        elif message.msg_type == MSG_COMMIT:
            self.sim.process(self._handle_commit(message), name=f"{self.org_id}.commit")
        elif message.msg_type == MSG_GOSSIP:
            self.sim.process(self._handle_gossip(message), name=f"{self.org_id}.gossip_rx")
        elif message.msg_type == MSG_READ:
            self.sim.process(self._handle_read(message), name=f"{self.org_id}.read")
        elif message.msg_type == MSG_SYNC_DIGEST:
            self._handle_sync_digest(message)
        elif message.msg_type == MSG_SYNC_REQUEST:
            self._handle_sync_request(message)
        elif message.msg_type in self.extension_handlers:
            self.extension_handlers[message.msg_type](message)

    # -- phase 1: endorsement ----------------------------------------------

    def _handle_proposal(self, message: Message):
        arrived = self.sim.now
        if self.byzantine_active and self.byzantine is not None:
            if self.rng.random() < self.byzantine.drop_probability:
                self.dropped_requests += 1
                return
        proposal = Proposal.from_wire(message.body)
        if self.ca.is_revoked(proposal.client_id) or not self.ca.is_enrolled(proposal.client_id):
            return
        for guard in self.proposal_guards:
            if not guard(proposal):
                self.dropped_requests += 1
                return
        contract = self.contracts.get(proposal.contract_id)
        if contract is None:
            return
        context = ContractContext(proposal.client_id, proposal.clock)
        try:
            contract.execute(context, proposal.function, proposal.params)
        except (ContractError, CRDTError, TypeError):
            return  # malformed invocation: no endorsement, client times out
        write_set = context.write_set_wire()
        # Inlined Resource.serve so the queue-wait/service boundary is
        # observable; the event sequence is identical to serve().
        request = self.cpu.request()
        yield request
        granted = self.sim.now
        try:
            yield self.sim.timeout(
                self.cpu.service_time(
                    self.perf.endorse_base + self.perf.endorse_per_op * len(write_set)
                )
            )
        finally:
            self.cpu.release(request)
        if self.tracer is not None:
            self.tracer.span(
                "orderlesschain/P1/Queue",
                arrived,
                granted,
                node=self.org_id,
                txn_id=proposal.proposal_id,
            )
            self.tracer.span(
                "orderlesschain/P1/CPU",
                granted,
                self.sim.now,
                node=self.org_id,
                txn_id=proposal.proposal_id,
                attrs={"ops": len(write_set)},
            )
        if (
            self.byzantine_active
            and self.byzantine is not None
            and self.rng.random() < self.byzantine.wrong_endorsement_probability
        ):
            write_set = self._tamper_write_set(write_set)
        endorsement = Endorsement.create(self.identity, proposal.proposal_id, write_set)
        self.endorsed_count += 1
        if self.recorder is not None:
            self.recorder.phase("orderlesschain/P1/Execution", self.sim.now - arrived)
        if self.tracer is not None:
            self.tracer.span(
                "orderlesschain/P1/Execution",
                arrived,
                self.sim.now,
                node=self.org_id,
                txn_id=proposal.proposal_id,
            )
        self.network.send(
            Message(
                sender=self.org_id,
                recipient=message.sender,
                msg_type=MSG_ENDORSEMENT,
                body=endorsement.to_wire(),
                size_bytes=self.perf.endorsement_bytes(len(write_set)),
                channel=self._contract_channel.get(proposal.contract_id, DEFAULT_CHANNEL),
            )
        )

    @staticmethod
    def _tamper_write_set(write_set: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """A Byzantine org's 'incorrectly executed smart contract'."""
        tampered = [dict(op) for op in write_set]
        for op in tampered:
            if op["value_type"] == "gcounter":
                op["value"] = (op["value"] or 0) + 1_000_000
            else:
                op["value"] = "<tampered>"
        return tampered

    # -- phase 2: validation and commit ---------------------------------------

    def validate_transaction(self, transaction: Transaction) -> tuple[bool, str]:
        """Definition 3.2's signature-validity check plus well-formedness.

        Invariant-condition validity needs no runtime check: write-sets
        contain only I-confluent CRDT operations, so any transaction
        whose signatures validate preserves the invariants (Section 7).
        """
        proposal = transaction.proposal
        if not self.ca.is_enrolled(proposal.client_id) or self.ca.is_revoked(proposal.client_id):
            return False, "unknown or revoked client"
        digest = transaction.digest()
        client_payload = Transaction.signed_payload_from_digest(
            transaction.transaction_id, digest
        )
        if not self.ca.verify(proposal.client_id, client_payload, transaction.client_signature):
            return False, "invalid client signature"
        # Verify against the *transaction's* write-set digest: this both
        # checks each endorser's signature and proves the client did not
        # swap in different operations.
        endorsement_payload = Endorsement.signed_payload_from_digest(
            transaction.transaction_id, digest
        )
        valid_endorsers: set[str] = set()
        for endorsement in transaction.endorsements:
            certificate_ok = (
                self.ca.is_enrolled(endorsement.org_id)
                and self.ca.certificate_of(endorsement.org_id).role == "organization"
            )
            if not certificate_ok:
                continue
            if self.ca.verify(endorsement.org_id, endorsement_payload, endorsement.signature):
                valid_endorsers.add(endorsement.org_id)
        if not self.policy.satisfied_by(len(valid_endorsers)):
            return False, (
                f"endorsement policy {self.policy} unsatisfied: "
                f"{len(valid_endorsers)} valid endorsements"
            )
        try:
            transaction.operations()
        except CRDTError as exc:
            return False, f"malformed write-set: {exc}"
        return True, ""

    def _commit_transaction(
        self,
        transaction: Transaction,
        via_gossip: bool,
        channel: Optional[ChannelState] = None,
    ):
        """Shared commit path; returns (valid, block_or_None, reason).

        All ledger/index mutations land on the transaction's channel
        shard (routed by contract id); the CPU and cache lock stay
        org-wide — channels share compute, not state.
        """
        if channel is None:
            channel = self._channel_of(transaction.proposal.contract_id)
        ledger = channel.ledger
        txn_id = transaction.transaction_id
        if ledger.is_valid_transaction(txn_id):
            # Already committed as valid: never commit twice. (A
            # transaction logged as *invalid* may still be retried —
            # e.g. it was rejected while its object was frozen and the
            # seal's final set later includes it.)
            return True, None, "duplicate"
        valid, reason = self.validate_transaction(transaction)
        if valid:
            for guard in self.commit_guards:
                guard_reason = guard(transaction)
                if guard_reason is not None:
                    valid, reason = False, guard_reason
                    break
        operations = transaction.operations() if valid else []
        if valid:
            # Applying to the cache is serialized by the cache lock;
            # the lock is taken per CRDT *object* touched (several
            # operations on one object apply under a single
            # acquisition), which is why the paper's Figure 6(d) shows
            # latency growing with the object count while the
            # ops-per-object sweep (config 5) stays flat.
            touched_objects = len({operation.object_id for operation in operations})
            apply_started = self.sim.now
            yield from self.cache_lock.serve(self.perf.apply_per_op * max(1, touched_objects))
            if self.tracer is not None:
                self.tracer.span(
                    "orderlesschain/P2/Apply",
                    apply_started,
                    self.sim.now,
                    node=self.org_id,
                    txn_id=txn_id,
                    attrs={"objects": touched_objects},
                )
            if ledger.is_valid_transaction(txn_id):
                # Another handler (client path or gossip) committed the
                # same transaction while we waited for the lock.
                return True, None, "duplicate"
            for guard in self.commit_guards:
                # Re-run the guards after the lock wait: a guard's
                # verdict can change mid-commit (e.g. the object was
                # frozen by a seal while this transaction queued), and
                # committing past it would diverge from the agreement
                # the guard protects.
                guard_reason = guard(transaction)
                if guard_reason is not None:
                    valid, reason = False, guard_reason
                    break
        if valid:
            wire = transaction.to_wire()
            block = ledger.commit(
                transaction.transaction_id, operations, wire, valid=True
            )
            self.committed_valid += 1
            channel.committed_valid += 1
            channel.gossip_backlog.append((wire, self.gossip_ttl))
            channel.valid_txn_wire[txn_id] = wire
            channel.commit_index.add(txn_id)
            for operation in operations:
                channel.txns_by_object.setdefault(operation.object_id, set()).add(txn_id)
            if via_gossip:
                self.gossip_commits += 1
                channel.gossip_commits += 1
            return True, block, reason
        if via_gossip:
            # A gossiped transaction that fails validation is a forgery
            # (possibly tampered in transit by a Byzantine peer); it is
            # dropped so an honest copy can still commit later.
            return False, None, reason
        if ledger.has_transaction(txn_id):
            # Already logged as invalid earlier; don't log it twice.
            return False, None, reason
        block = ledger.commit(
            transaction.transaction_id, [], transaction.to_wire(), valid=False
        )
        self.committed_invalid += 1
        channel.committed_invalid += 1
        return False, block, reason

    def _handle_commit(self, message: Message):
        arrived = self.sim.now
        if self.byzantine_active and self.byzantine is not None:
            if self.rng.random() < self.byzantine.drop_probability:
                self.dropped_requests += 1
                return
        transaction = Transaction.from_wire(message.body)
        txn_id = transaction.transaction_id
        channel = self._channel_of(transaction.proposal.contract_id)
        ledger = channel.ledger
        if ledger.has_transaction(txn_id):
            # Duplicate (resent by the client or already gossiped): do
            # not commit again, but resend the receipt/rejection.
            yield from self.cpu.serve(self.perf.dedup_check)
            self._send_receipt(
                message.sender,
                txn_id,
                ledger.log.head_hash,
                ledger.is_valid_transaction(txn_id),
                channel=channel.channel_id,
            )
            return
        verify_started = self.sim.now
        yield from self.cpu.serve(
            self.perf.commit_verify_base
            + self.perf.commit_verify_per_endorsement * len(transaction.endorsements)
        )
        if self.tracer is not None:
            self.tracer.span(
                "orderlesschain/P2/Verify",
                verify_started,
                self.sim.now,
                node=self.org_id,
                txn_id=txn_id,
                attrs={"endorsements": len(transaction.endorsements)},
            )
        valid, block, _reason = yield from self._commit_transaction(
            transaction, via_gossip=False, channel=channel
        )
        if self.recorder is not None:
            self.recorder.phase("orderlesschain/P2/Commit", self.sim.now - arrived)
        if self.tracer is not None:
            self.tracer.span(
                "orderlesschain/P2/Commit",
                arrived,
                self.sim.now,
                node=self.org_id,
                txn_id=txn_id,
                attrs={"valid": valid},
            )
        block_hash = block.block_hash if block is not None else ledger.log.head_hash
        self._send_receipt(
            message.sender, txn_id, block_hash, valid, channel=channel.channel_id
        )

    def _send_receipt(
        self,
        client_id: str,
        txn_id: str,
        block_hash: str,
        valid: bool,
        channel: str = DEFAULT_CHANNEL,
    ) -> None:
        receipt = Receipt.create(self.identity, txn_id, block_hash, valid)
        self.network.send(
            Message(
                sender=self.org_id,
                recipient=client_id,
                msg_type=MSG_RECEIPT,
                body=receipt.to_wire(),
                size_bytes=self.perf.receipt_bytes,
                channel=channel,
            )
        )

    # -- gossip (step 5) --------------------------------------------------------

    def _gossip_loop(self):
        while True:
            yield self.sim.timeout(self.gossip_interval)
            if self.crashed or not self.peer_ids:
                continue
            # Each channel gossips its own backlog with its own fanout
            # sample — sharded dissemination over a shared WAN. With a
            # single channel the per-tick draw sequence (byzantine
            # suppress, then fanout sample, only when the backlog is
            # non-empty) is exactly the legacy one.
            for channel in self.channels.values():
                if not channel.gossip_backlog:
                    continue
                entries = channel.gossip_backlog
                # Re-queue transactions that still have rounds left.
                channel.gossip_backlog = [
                    (wire, ttl - 1) for wire, ttl in entries if ttl > 1
                ]
                batch = [wire for wire, _ in entries]
                if (
                    self.byzantine_active
                    and self.byzantine is not None
                    and self.rng.random() < self.byzantine.suppress_gossip_probability
                ):
                    continue
                fanout = min(self.gossip_fanout, len(self.peer_ids))
                targets = self.rng.sample(self.peer_ids, fanout)
                size = sum(
                    self.perf.gossip_txn_base_bytes
                    + self.perf.per_op_bytes * len(txn["write_set"])
                    for txn in batch
                )
                for target in targets:
                    self.network.send(
                        Message(
                            sender=self.org_id,
                            recipient=target,
                            msg_type=MSG_GOSSIP,
                            body={"transactions": batch},
                            size_bytes=size,
                            channel=channel.channel_id,
                        )
                    )

    def _handle_gossip(self, message: Message):
        for wire in message.body["transactions"]:
            # Dedup straight from the wire form: the transaction id is
            # the proposal's (client id, Lamport counter) pair, so a
            # duplicate — the overwhelmingly common case at steady
            # state — is skipped without parsing the full transaction.
            proposal_wire = wire["proposal"]
            txn_id = f"{proposal_wire['client_id']}:{proposal_wire['clock']['counter']}"
            # Route by the proposal's contract id: gossip batches need
            # no channel key on the wire because every transaction
            # already names its contract.
            channel = self._channel_of(proposal_wire["contract_id"])
            if channel.ledger.is_valid_transaction(txn_id):
                yield from self.cpu.serve(self.perf.dedup_check)
                continue
            transaction = Transaction.from_wire(wire)
            # Batched, amortized verification: cheaper than the client
            # path, off any client's critical path.
            yield from self.cpu.serve(self.perf.gossip_commit_per_txn)
            yield from self._commit_transaction(
                transaction, via_gossip=True, channel=channel
            )

    # -- anti-entropy reconciliation ---------------------------------------------

    def _digest_body_and_size(
        self, channel: Optional[ChannelState] = None
    ) -> tuple[Dict[str, Any], int]:
        """The digest wire form + modeled size for the active mode.

        Legacy: the full sorted id list, ``digest_base_bytes +
        digest_per_id_bytes`` per id — O(n) bytes and O(n log n) work
        per round. Watermark: the per-client watermark + gap summary,
        O(clients + gaps) bytes and O(clients) work, read straight off
        the incrementally maintained :class:`CommittedIndex`.

        Digests summarize one channel's committed set. Only in
        multichannel mode does the body carry the channel id — the
        single-channel wire form is byte-identical to the legacy one.
        """
        if channel is None:
            channel = self.channels[DEFAULT_CHANNEL]
        tag = {"channel": channel.channel_id} if self._multichannel else {}
        if self.legacy_digests:
            txn_ids = sorted(channel.valid_txn_wire)
            return (
                {"txn_ids": txn_ids, **tag},
                self.perf.legacy_digest_bytes(len(txn_ids)),
            )
        marks = channel.commit_index.watermarks
        return (
            {"watermarks": marks.to_wire(), **tag},
            self.perf.watermark_digest_bytes(marks.client_count, marks.gap_count),
        )

    def _send_digest(
        self, recipient: str, context: str, channel: Optional[ChannelState] = None
    ) -> None:
        if channel is None:
            channel = self.channels[DEFAULT_CHANNEL]
        body, size = self._digest_body_and_size(channel)
        self.network.send(
            Message(
                sender=self.org_id,
                recipient=recipient,
                msg_type=MSG_SYNC_DIGEST,
                body=body,
                size_bytes=size,
                channel=channel.channel_id,
            )
        )
        if self.tracer is not None:
            self.tracer.instant(
                "org/sync_digest",
                self.sim.now,
                node=self.org_id,
                attrs={
                    "mode": "legacy" if self.legacy_digests else "watermark",
                    "bytes": size,
                    "context": context,
                },
            )

    def _antientropy_loop(self):
        """Periodically exchange transaction digests with one peer.

        Push gossip alone cannot reconcile replicas once a
        transaction's push rounds are spent — most visibly across a
        healed network partition (Section 3's CAP discussion). The
        digest exchange is the classic anti-entropy repair: send a
        digest of the committed transaction ids; the peer requests
        what it is missing and receives it as a gossip batch.
        """
        while True:
            yield self.sim.timeout(self.sync_interval)
            if self.crashed or not self.peer_ids:
                continue
            if (
                self.byzantine_active
                and self.byzantine is not None
                and self.rng.random() < self.byzantine.suppress_gossip_probability
            ):
                continue
            target = self.rng.choice(self.peer_ids)
            # One digest per channel to the same peer: the peer draw is
            # shared (no extra randomness per channel), so the
            # single-channel draw sequence is unchanged.
            for channel in self.channels.values():
                self._send_digest(target, context="sync", channel=channel)

    def _handle_sync_digest(self, message: Message) -> None:
        """Push-pull reconciliation against a peer's digest.

        Pull: request the transactions the digest covers that we lack.
        Push: send back (as a gossip batch) the valid transactions we
        hold that the digest does not cover — this is what lets a
        recovered organization catch up by *announcing* its (stale)
        digest to peers (see :meth:`resync`), and halves the number of
        anti-entropy rounds needed after a partition heals.

        Watermark digests reconstruct both sides of the symmetric
        difference from watermark deltas (O(clients + gaps +
        divergence)); the legacy path set-diffs the full id list.
        """
        body = message.body
        channel = self.channels.get(body.get("channel", DEFAULT_CHANNEL))
        if channel is None:
            return  # digest for a channel this organization never joined
        if "watermarks" in body:
            remote = WatermarkDigest.from_wire(body["watermarks"])
            missing = [
                txn_id
                for txn_id in channel.commit_index.missing_from(remote)
                if not channel.ledger.has_transaction(txn_id)
            ]
            surplus = list(channel.commit_index.surplus_over(remote))
        else:
            digest = set(body["txn_ids"])
            missing = [
                txn_id
                for txn_id in body["txn_ids"]
                if not channel.ledger.has_transaction(txn_id)
            ]
            surplus = [
                txn_id
                for txn_id in sorted(channel.valid_txn_wire)
                if txn_id not in digest
            ]
        pages = 0
        if missing:
            pages += self._send_sync_requests(message.sender, missing, channel)
        if surplus:
            pages += self._send_txn_batches(
                message.sender,
                (channel.valid_txn_wire[txn_id] for txn_id in surplus),
                channel,
            )
        if self.tracer is not None:
            self.tracer.instant(
                "org/sync_reconcile",
                self.sim.now,
                node=self.org_id,
                attrs={
                    "mode": "watermark" if "watermarks" in body else "legacy",
                    "missing": len(missing),
                    "surplus": len(surplus),
                    "pages": pages,
                },
            )

    def _send_sync_requests(
        self, recipient: str, txn_ids: List[str], channel: Optional[ChannelState] = None
    ) -> int:
        """Request ids from a peer, paginated in watermark mode."""
        if channel is None:
            channel = self.channels[DEFAULT_CHANNEL]
        tag = {"channel": channel.channel_id} if self._multichannel else {}
        page = len(txn_ids) if self.legacy_digests else max(1, self.perf.sync_page_txns)
        pages = 0
        for start in range(0, len(txn_ids), page):
            chunk = txn_ids[start : start + page]
            self.network.send(
                Message(
                    sender=self.org_id,
                    recipient=recipient,
                    msg_type=MSG_SYNC_REQUEST,
                    body={"txn_ids": chunk, **tag},
                    size_bytes=self.perf.legacy_digest_bytes(len(chunk)),
                    channel=channel.channel_id,
                )
            )
            pages += 1
        return pages

    def _send_txn_batches(
        self,
        recipient: str,
        wires: Iterable[Dict[str, Any]],
        channel: Optional[ChannelState] = None,
    ) -> int:
        """Ship transaction wires as gossip batches.

        In watermark mode batches are capped at ``sync_page_txns``
        transactions so a freshly recovered organization receives its
        backlog as a paginated stream, never one unbounded message;
        the legacy path keeps the old single-message behavior.
        """
        if channel is None:
            channel = self.channels[DEFAULT_CHANNEL]
        wires = list(wires)
        if not wires:
            return 0
        page = len(wires) if self.legacy_digests else max(1, self.perf.sync_page_txns)
        pages = 0
        for start in range(0, len(wires), page):
            chunk = wires[start : start + page]
            size = sum(
                self.perf.gossip_txn_base_bytes
                + self.perf.per_op_bytes * len(txn["write_set"])
                for txn in chunk
            )
            self.network.send(
                Message(
                    sender=self.org_id,
                    recipient=recipient,
                    msg_type=MSG_GOSSIP,
                    body={"transactions": chunk},
                    size_bytes=size,
                    channel=channel.channel_id,
                )
            )
            pages += 1
        return pages

    def _handle_sync_request(self, message: Message) -> None:
        channel = self.channels.get(message.body.get("channel", DEFAULT_CHANNEL))
        if channel is None:
            return
        self._send_txn_batches(
            message.sender,
            (
                channel.valid_txn_wire[txn_id]
                for txn_id in message.body["txn_ids"]
                if txn_id in channel.valid_txn_wire
            ),
            channel,
        )

    # -- crash / recovery (fault injection) ---------------------------------------

    def crash_local_state(self) -> None:
        """Drop the in-memory state a fail-stop crash would lose.

        The durable pieces (hash-chain log, database, committed wire
        forms) survive; the gossip backlog is purely in-memory and is
        lost. Called by the fault layer together with ``Network.crash``.
        """
        self.crashed = True
        for channel in self.channels.values():
            channel.gossip_backlog.clear()

    def resync(self) -> None:
        """Announce our digest to every peer after recovering.

        Peers answer a digest push-pull style (see
        :meth:`_handle_sync_digest`): they request what we have that
        they lack, and push back what they have that we lack — exactly
        the rejoin reconciliation an organization needs after a crash.
        """
        self.crashed = False
        for channel in self.channels.values():
            channel.ledger.rebuild_cache()
        for target in self.peer_ids:
            for channel in self.channels.values():
                self._send_digest(target, context="resync", channel=channel)

    # -- snapshot checkpoints (docs/RESILIENCE.md) ---------------------------------

    def _state_digest(self, channel: Optional[ChannelState] = None) -> str:
        """Order-independent digest of a channel's valid committed set.

        Read in O(1) off the running per-id SHA-256 XOR accumulator the
        :class:`CommittedIndex` updates at commit time — the old
        implementation sorted and joined every id (O(n log n)) on each
        checkpoint.
        """
        if channel is None:
            channel = self.channels[DEFAULT_CHANNEL]
        return channel.commit_index.state_digest()

    def _snapshot_loop(self):
        """Periodically checkpoint the committed set for fast recovery.

        The checkpoint's CPU cost is proportional to what changed since
        the previous snapshot (incremental checkpointing); the snapshot
        itself is the durable marker :meth:`recover` replays from. It
        stores only the commit-log position, count, and state digest —
        O(1) per checkpoint, never a copy of the full id set. Each
        channel checkpoints independently (its own log position and
        digest); with one channel the loop is the legacy one.
        """
        while True:
            yield self.sim.timeout(self.snapshot_interval)
            if self.crashed:
                continue
            for channel in self.channels.values():
                known = len(channel.valid_txn_wire)
                prev = channel.snapshot["count"] if channel.snapshot is not None else 0
                new = max(0, known - prev)
                if channel.snapshot is not None and new == 0:
                    continue  # nothing committed since the last checkpoint
                yield from self.cpu.serve(
                    self.perf.snapshot_base + self.perf.snapshot_per_txn * new
                )
                channel.snapshot = {
                    "log_position": len(channel.commit_index.log),
                    "count": known,
                    "digest": self._state_digest(channel),
                    "taken_at": self.sim.now,
                }
                self.snapshots_taken += 1
                if self.tracer is not None:
                    self.tracer.instant(
                        "org/snapshot",
                        self.sim.now,
                        node=self.org_id,
                        attrs={"txns": known, "new": new},
                    )

    def recover(self) -> str:
        """Rejoin after a crash; returns the recovery mode used.

        With snapshots enabled and at least one checkpoint taken, the
        organization replays only the delta between the checkpoint and
        its durable log, then reconciles with a *couple* of peers
        (targeted anti-entropy). Otherwise it falls back to the legacy
        full :meth:`resync` broadcast.
        """
        if self.snapshot_interval > 0 and any(
            channel.snapshot is not None for channel in self.channels.values()
        ):
            self.last_recovery_mode = "snapshot"
            self.crashed = False
            self.sim.process(self._recover_from_snapshot(), name=f"{self.org_id}.recover")
            return "snapshot"
        self.last_recovery_mode = "resync"
        self.resync()
        return "resync"

    def _recover_from_snapshot(self):
        started = self.sim.now
        # The insertion-ordered commit log makes the replay delta a
        # slice — O(delta), no set copy or full-history membership
        # scan. Channels replay independently; a channel that never
        # checkpointed replays its whole (short) log. The CPU charge is
        # the summed delta, one serve — identical to the legacy path
        # when only the default channel exists.
        replayed = 0
        for channel in self.channels.values():
            position = channel.snapshot["log_position"] if channel.snapshot else 0
            replayed += len(channel.commit_index.log) - position
        yield from self.cpu.serve(
            self.perf.recover_base + self.perf.recover_replay_per_txn * replayed
        )
        for channel in self.channels.values():
            channel.ledger.rebuild_cache()
        # Targeted anti-entropy: a digest to a bounded number of peers
        # is enough to learn what was missed while down (each answers
        # push-pull), without the O(peers) broadcast of resync(). The
        # peer sample is shared across channels.
        fanout = min(2, len(self.peer_ids))
        targets = self.rng.sample(self.peer_ids, fanout) if fanout else []
        for target in targets:
            for channel in self.channels.values():
                self._send_digest(target, context="recover", channel=channel)
        if self.tracer is not None:
            self.tracer.span(
                "org/recover",
                started,
                self.sim.now,
                node=self.org_id,
                attrs={"mode": "snapshot", "replayed": replayed, "peers": fanout},
            )

    # -- reads --------------------------------------------------------------------

    def _handle_read(self, message: Message):
        body = message.body
        proposal = Proposal.from_wire(body)
        contract = self.contracts.get(proposal.contract_id)
        if contract is None:
            return
        channel = self._channel_of(proposal.contract_id)
        ledger = channel.ledger
        yield from self.cpu.serve(self.perf.read_base)
        if ledger.cache_enabled:
            # Cached reads are served under the cache lock.
            entries = ledger.valid_transaction_count
            yield from self.cache_lock.serve(
                self.perf.cache_read_base + self.perf.cache_read_per_entry * entries
            )
        else:
            # Ablation: replay the object's operations from the DB.
            replay_ops = self._replay_cost_estimate(proposal, channel)
            yield from self.cpu.serve(self.perf.log_replay_per_op * replay_ops)
        reader = StateReader(ledger.read)
        context = ContractContext(
            proposal.client_id, proposal.clock, state=reader, allow_reads=True
        )
        try:
            value = contract.execute(context, proposal.function, proposal.params)
        except (ContractError, CRDTError, TypeError):
            value = None
        self.network.send(
            Message(
                sender=self.org_id,
                recipient=message.sender,
                msg_type=MSG_READ_RESPONSE,
                body={"proposal_id": proposal.proposal_id, "value": value},
                size_bytes=self.perf.read_response_bytes,
                channel=channel.channel_id,
            )
        )

    def _replay_cost_estimate(
        self, proposal: Proposal, channel: Optional[ChannelState] = None
    ) -> int:
        """Operations replayed on a cache-miss read (the O(n) problem)."""
        del proposal  # cost driven by total committed operations
        ledger = (channel or self.channels[DEFAULT_CHANNEL]).ledger
        return max(1, ledger.valid_transaction_count)

    def transactions_for_object(
        self, object_id: str, channel: str = DEFAULT_CHANNEL
    ) -> Dict[str, Dict[str, Any]]:
        """Valid committed transactions touching ``object_id`` (id -> wire)."""
        state = self.channels[channel]
        return {
            txn_id: state.valid_txn_wire[txn_id]
            for txn_id in state.txns_by_object.get(object_id, ())
            if txn_id in state.valid_txn_wire
        }

    def commit_directly(self, transaction: Transaction):
        """Commit a transaction outside the client path (no receipt).

        Used by protocol extensions (e.g. sealing) that redistribute
        transactions; still runs full validation. A generator — run it
        with ``yield from`` inside a process.
        """
        return self._commit_transaction(transaction, via_gossip=True)

    # -- state access -------------------------------------------------------

    def read_state(self, object_id: str, path=(), channel: str = DEFAULT_CHANNEL) -> Any:
        """Direct (zero-time) state read for tests and assertions."""
        return self.channels[channel].ledger.read(object_id, path)

    def state_snapshot(self) -> Any:
        """Application state: the legacy single-ledger snapshot with one
        channel, else one snapshot per channel keyed by channel id (the
        convergence oracle then compares shards pairwise for free)."""
        if not self._multichannel:
            return self.ledger.state_snapshot()
        return {
            channel_id: channel.ledger.state_snapshot()
            for channel_id, channel in sorted(self.channels.items())
        }


__all__ = ["Organization"]
