"""Byzantine behaviour configuration (Section 8).

Organizations: "Byzantine organizations may attempt to jeopardize the
system by either responding with wrong messages or avoiding responding
altogether"; in the evaluation they "randomly avoid responding to
clients or endorse the proposals incorrectly" and "randomly avoid
forwarding the transactions to other organizations".

Clients (four fault types of Section 8):
1. ``proposal_only`` — submit proposals but never commit (DDoS-style);
2. ``partial_commit`` — send the transaction to fewer than ``q``
   organizations (gossip still spreads it);
3. ``split_clock`` — send different logical timestamps to different
   organizations (endorsement write-sets mismatch, so no valid
   transaction can be assembled);
4. ``no_increment`` — never advance the Lamport clock;
plus ``tamper`` — modify the write-set after endorsement (signature
validation rejects the transaction).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet

VALID_CLIENT_FAULTS = frozenset(
    {"proposal_only", "partial_commit", "split_clock", "no_increment", "tamper"}
)


@dataclass(frozen=True)
class ByzantineOrgConfig:
    """How an organization misbehaves while its Byzantine window is on."""

    drop_probability: float = 0.5  # silently ignore a client request
    wrong_endorsement_probability: float = 0.5  # endorse with a corrupted write-set
    suppress_gossip_probability: float = 1.0  # do not forward transactions

    def __post_init__(self) -> None:
        for name in (
            "drop_probability",
            "wrong_endorsement_probability",
            "suppress_gossip_probability",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, got {value}")


@dataclass(frozen=True)
class ByzantineClientConfig:
    """Which client fault(s) a Byzantine client exhibits."""

    faults: FrozenSet[str] = frozenset({"proposal_only"})
    fault_probability: float = 1.0  # chance a given transaction misbehaves

    def __post_init__(self) -> None:
        unknown = set(self.faults) - VALID_CLIENT_FAULTS
        if unknown:
            raise ValueError(
                f"unknown client faults {sorted(unknown)}; valid: {sorted(VALID_CLIENT_FAULTS)}"
            )
        if not self.faults:
            raise ValueError("a Byzantine client needs at least one fault")
        if not 0.0 <= self.fault_probability <= 1.0:
            raise ValueError(f"fault_probability must be a probability, got {self.fault_probability}")


__all__ = ["ByzantineOrgConfig", "ByzantineClientConfig", "VALID_CLIENT_FAULTS"]
