"""The Smart Contract Library (SCL, Section 6).

Developers subclass :class:`SmartContract` and implement functions as
methods registered with :func:`modify_function` / :func:`read_function`
decorators. Modify functions receive a :class:`ContractContext` whose
CRDT APIs create I-confluent operations (Table 1); read functions
retrieve CRDT values from the ledger with no side effects.

Determinism contract: a modify function must derive its write-set
*only* from the invocation parameters and the client's clock — never
from local state — because every endorsing organization must produce an
identical write-set for the transaction to assemble (Section 4, commit
phase). The context enforces this by refusing reads during modify
execution.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.crdt.clock import OpClock
from repro.crdt.operation import (
    TYPE_GCOUNTER,
    TYPE_MAP,
    TYPE_MVREGISTER,
    TYPE_ORSET,
    Operation,
)
from repro.errors import ContractError


class StateReader:
    """Read access to an organization's application state."""

    def __init__(self, read_callback: Callable[[str, tuple], Any]) -> None:
        self._read = read_callback

    def read(self, object_id: str, path: Iterable[str] = ()) -> Any:
        """Table 1's read API: resolved CRDT value, no side effects."""
        return self._read(object_id, tuple(path))


class ContractContext:
    """Execution context handed to smart-contract functions.

    For modify functions it accumulates the write-set; for read
    functions it exposes :attr:`state`.
    """

    def __init__(
        self,
        client_id: str,
        clock: OpClock,
        state: Optional[StateReader] = None,
        allow_reads: bool = False,
    ) -> None:
        self.client_id = client_id
        self.clock = clock
        self._state = state
        self._allow_reads = allow_reads
        self._write_set: List[Operation] = []

    # -- CRDT modification APIs (Table 1) ---------------------------------

    def add_value(self, object_id: str, value: float, path: Iterable[str] = ()) -> None:
        """G-Counter ``AddValue(value, clock)``."""
        self._emit(object_id, path, value, TYPE_GCOUNTER)

    def insert_value(self, object_id: str, key: str, value: Any, path: Iterable[str] = ()) -> None:
        """CRDT Map ``InsertValue(key, value, clock)``.

        The inserted value behaves as an MV-Register at ``key`` (null
        deletes); ``path`` addresses a nested map.
        """
        self._emit(object_id, tuple(path) + (str(key),), value, TYPE_MVREGISTER)

    def assign_value(self, object_id: str, value: Any, path: Iterable[str] = ()) -> None:
        """MV-Register ``AssignValue(value, clock)``."""
        self._emit(object_id, path, value, TYPE_MVREGISTER)

    def create_map(self, object_id: str, key: str, path: Iterable[str] = ()) -> None:
        """Create a nested map under ``key`` (for complex structures)."""
        self._emit(object_id, path, str(key), TYPE_MAP)

    def add_to_set(self, object_id: str, element: Any, path: Iterable[str] = ()) -> None:
        """OR-Set add (extension CRDT)."""
        self._emit(object_id, path, {"add": element}, TYPE_ORSET)

    def remove_from_set(
        self, object_id: str, element: Any, tags: Iterable[str], path: Iterable[str] = ()
    ) -> None:
        """OR-Set observed-remove (extension CRDT).

        ``tags`` are the add tags the client observed via the read API
        (``ORSet.read_tags``); only those adds are removed, so the
        operation commutes with concurrent adds.
        """
        self._emit(object_id, path, {"remove": element, "tags": list(tags)}, TYPE_ORSET)

    def _emit(self, object_id: str, path: Iterable[str], value: Any, value_type: str) -> None:
        self._write_set.append(
            Operation(
                object_id=object_id,
                path=tuple(str(part) for part in path),
                value=value,
                value_type=value_type,
                clock=self.clock,
                op_index=len(self._write_set),
            )
        )

    # -- reads ---------------------------------------------------------------

    @property
    def state(self) -> StateReader:
        if not self._allow_reads:
            raise ContractError(
                "modify functions must not read state: endorsing organizations may "
                "hold divergent replicas and would produce mismatching write-sets"
            )
        if self._state is None:
            raise ContractError("no state reader attached to this context")
        return self._state

    # -- results ------------------------------------------------------------

    def write_set(self) -> List[Operation]:
        return list(self._write_set)

    def write_set_wire(self) -> List[Dict[str, Any]]:
        return [op.to_wire() for op in self._write_set]


def modify_function(func: Callable) -> Callable:
    """Mark a contract method as a modify function."""
    func._scl_kind = "modify"
    return func


def read_function(func: Callable) -> Callable:
    """Mark a contract method as a read function."""
    func._scl_kind = "read"
    return func


class SmartContract:
    """Base class for OrderlessChain smart contracts."""

    contract_id: str = ""

    def __init__(self) -> None:
        if not self.contract_id:
            raise ContractError(f"{type(self).__name__} must set contract_id")
        self._functions: Dict[str, tuple[str, Callable]] = {}
        for name in dir(self):
            attr = getattr(self, name)
            kind = getattr(attr, "_scl_kind", None)
            if kind is not None:
                self._functions[name] = (kind, attr)

    def functions(self) -> Dict[str, str]:
        """Function name -> kind ("modify" or "read")."""
        return {name: kind for name, (kind, _) in sorted(self._functions.items())}

    def function_kind(self, function: str) -> str:
        if function not in self._functions:
            raise ContractError(f"{self.contract_id}: unknown function {function!r}")
        return self._functions[function][0]

    def execute(self, context: ContractContext, function: str, params: Dict[str, Any]) -> Any:
        """Invoke a contract function with the given context."""
        if function not in self._functions:
            raise ContractError(f"{self.contract_id}: unknown function {function!r}")
        _, bound = self._functions[function]
        return bound(context, **params)


__all__ = [
    "ContractContext",
    "SmartContract",
    "StateReader",
    "modify_function",
    "read_function",
]
