"""Calibrated CPU/service-time model for all five systems.

Every node in the simulation owns a CPU resource with ``vcpus`` slots
(the paper's VMs have four vCPUs); message handling occupies the CPU
for the service times below. The values are calibrated so that the
paper-scale operating points reproduce the evaluation's shapes — see
DESIGN.md's "Calibration" section; the anchor is Table 3.

``scaled(k)`` multiplies every service time by ``k``. Benchmarks divide
arrival rates and client counts by the same ``k``, which keeps all
utilizations (and therefore the qualitative shape of every figure)
unchanged while cutting the number of simulated events by ``k``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass


@dataclass(frozen=True)
class PerfModel:
    """Service times (seconds) and node parameters."""

    vcpus: int = 4

    # -- OrderlessChain organizations ----------------------------------
    endorse_base: float = 0.0010
    endorse_per_op: float = 0.00005
    commit_verify_base: float = 0.0004
    commit_verify_per_endorsement: float = 0.0001
    gossip_commit_per_txn: float = 0.00015  # batched verification, amortized
    apply_per_op: float = 0.00006  # CRDT cache apply, under the cache lock
    cache_read_base: float = 0.0002  # cache read, under the cache lock
    cache_read_per_entry: float = 0.0000002
    read_base: float = 0.0003
    dedup_check: float = 0.00002
    log_replay_per_op: float = 0.00002  # cache-disabled ablation: read replays ops
    # Snapshot-based crash recovery (docs/RESILIENCE.md): periodic
    # checkpoint cost plus per-transaction replay of the delta between
    # the latest snapshot and the durable log on recovery.
    snapshot_base: float = 0.0005
    snapshot_per_txn: float = 0.00001
    recover_base: float = 0.0010
    recover_replay_per_txn: float = 0.00003

    # -- Fabric ----------------------------------------------------------
    fabric_endorse: float = 0.0010
    fabric_orderer_per_txn: float = 0.0017
    fabric_batch_timeout: float = 0.25
    fabric_max_batch: int = 500
    fabric_validate_per_txn: float = 0.0003  # MVCC check
    fabric_commit_per_txn: float = 0.0003

    # -- FabricCRDT --------------------------------------------------------
    fabriccrdt_merge_base: float = 0.0005
    fabriccrdt_merge_per_update: float = 0.00001
    fabriccrdt_bytes_per_update: int = 64
    fabriccrdt_timeout: float = 240.0  # paper: timed out and excluded

    # -- BIDL ---------------------------------------------------------------
    bidl_sequencer_per_txn: float = 0.00005
    bidl_leader_per_txn: float = 0.0003
    bidl_batch_interval: float = 0.10
    bidl_consensus_rounds: int = 2  # WAN round trips per batch
    bidl_execute_per_txn: float = 0.0002

    # -- Sync HotStuff ---------------------------------------------------------
    hotstuff_leader_per_txn: float = 0.00026
    hotstuff_batch_interval: float = 0.10
    hotstuff_delta: float = 0.05  # the synchrony bound Δ; commit waits 2Δ
    hotstuff_commit_per_txn: float = 0.0001

    # -- message sizes (bytes) ----------------------------------------------
    proposal_bytes: int = 300
    endorsement_base_bytes: int = 300
    per_op_bytes: int = 140
    receipt_bytes: int = 160
    read_response_bytes: int = 220
    # Anti-entropy digest / sync wire sizes (docs/PERFORMANCE.md).
    # The legacy digest ships every committed id (base + per_id * n);
    # the watermark digest ships one entry per client plus one per gap
    # range (base + per_client * clients + per_gap * gaps). Sync
    # requests list explicit ids (per_id each) and responses are
    # paginated at ``sync_page_txns`` transactions per gossip message.
    digest_base_bytes: int = 64
    digest_per_id_bytes: int = 24
    digest_per_client_bytes: int = 20
    digest_per_gap_bytes: int = 16
    gossip_txn_base_bytes: int = 400
    sync_page_txns: int = 256

    def scaled(self, factor: float) -> "PerfModel":
        """Multiply every service time by ``factor`` (sizes/counts kept)."""
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        if factor == 1:
            return self
        updates = {}
        keep = {
            "vcpus",
            "fabric_max_batch",
            "bidl_consensus_rounds",
            "fabriccrdt_bytes_per_update",
            "proposal_bytes",
            "endorsement_base_bytes",
            "per_op_bytes",
            "receipt_bytes",
            "read_response_bytes",
            "digest_base_bytes",
            "digest_per_id_bytes",
            "digest_per_client_bytes",
            "digest_per_gap_bytes",
            "gossip_txn_base_bytes",
            "sync_page_txns",
        }
        # Batch intervals and the synchrony bound are latency constants
        # (like the WAN delay), not service rates — scaling them would
        # distort latency floors without affecting utilization.
        no_scale = keep | {
            "fabriccrdt_timeout",
            "fabric_batch_timeout",
            "bidl_batch_interval",
            "hotstuff_batch_interval",
            "hotstuff_delta",
        }
        for field in dataclasses.fields(self):
            if field.name in no_scale:
                continue
            updates[field.name] = getattr(self, field.name) * factor
        return dataclasses.replace(self, **updates)

    def endorsement_bytes(self, op_count: int) -> int:
        return self.endorsement_base_bytes + self.per_op_bytes * op_count

    def legacy_digest_bytes(self, id_count: int) -> int:
        """Full-set digest / sync-request size: every id on the wire."""
        return self.digest_base_bytes + self.digest_per_id_bytes * id_count

    def watermark_digest_bytes(self, client_count: int, gap_count: int) -> int:
        """Watermark digest size: O(clients + gap ranges), not O(n)."""
        return (
            self.digest_base_bytes
            + self.digest_per_client_bytes * client_count
            + self.digest_per_gap_bytes * gap_count
        )


__all__ = ["PerfModel"]
