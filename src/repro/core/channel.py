"""Per-channel sharded state (multi-application deployments).

A *channel* binds one smart contract to its own namespaced CRDT store,
hash-chain ledger, committed index, and watermark digest, so a single
``OrderlessChainNetwork`` can serve several independent applications
concurrently. Coordination-freedom makes this sharding trivial:
transactions from different applications never need a global order
(Section 3), so channels share only the WAN and the crypto caches.

Every organization owns one :class:`ChannelState` per channel. The
implicit ``default`` channel reproduces the historical single-channel
behaviour byte-for-byte: its state objects double as the
organization's legacy attributes (``org.ledger`` etc.), no wire body
grows a ``channel`` key, and no extra RNG draw or event is introduced
until a second channel is created.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.antientropy import CommittedIndex
from repro.core.contract import SmartContract
from repro.ledger.ledger import Ledger

#: The implicit channel every organization starts with; contracts
#: installed here keep their bare contract ids (legacy behaviour).
DEFAULT_CHANNEL = "default"


def scoped_contract_id(channel_id: str, contract_id: str) -> str:
    """The network-wide unique contract id for a channel-bound contract.

    Contract ids are the routing key of the whole protocol (proposals,
    commits, and reads all carry one), so two channels running the same
    application must expose distinct ids. Contracts on the default
    channel keep their bare id — existing clients and golden seeds see
    no change — while a contract installed on channel ``alpha`` is
    addressed as ``alpha:voting``.
    """
    if channel_id == DEFAULT_CHANNEL or contract_id.startswith(f"{channel_id}:"):
        return contract_id
    return f"{channel_id}:{contract_id}"


class ChannelState:
    """One channel's shard of an organization's state.

    Holds everything the commit/gossip/anti-entropy hot path touches
    per channel: the ledger (hash-chain log + database + CRDT value
    cache), the contracts bound to the channel, the gossip backlog,
    the committed wire forms, the incrementally maintained
    :class:`CommittedIndex` (watermark digests), the per-object
    transaction index used by sealing, and the recovery snapshot.
    """

    __slots__ = (
        "channel_id",
        "ledger",
        "contracts",
        "gossip_backlog",
        "valid_txn_wire",
        "commit_index",
        "txns_by_object",
        "snapshot",
        "committed_valid",
        "committed_invalid",
        "gossip_commits",
    )

    def __init__(self, channel_id: str, cache_enabled: bool = True) -> None:
        self.channel_id = channel_id
        self.ledger = Ledger(cache_enabled=cache_enabled)
        self.contracts: Dict[str, SmartContract] = {}
        # (transaction wire, remaining push rounds) pairs; see
        # Organization._gossip_loop.
        self.gossip_backlog: List[tuple[Dict[str, Any], int]] = []
        self.valid_txn_wire: Dict[str, Dict[str, Any]] = {}
        self.commit_index = CommittedIndex()
        self.txns_by_object: Dict[str, set] = {}
        self.snapshot: Optional[Dict[str, Any]] = None
        # Per-channel commit counters (the org-level totals aggregate
        # across channels), for the multichannel attribution panel.
        self.committed_valid = 0
        self.committed_invalid = 0
        self.gossip_commits = 0


__all__ = ["ChannelState", "DEFAULT_CHANNEL", "scoped_contract_id"]
