"""Transaction-level metrics recording.

Organizations and clients report events here; the benchmark harness
turns the records into throughput, latency percentiles, timelines, and
phase breakdowns (Table 3). The recorder is deliberately dumb — plain
appends — so recording never perturbs protocol behaviour.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class TransactionRecord:
    """Lifecycle of one client-submitted transaction."""

    transaction_id: str
    client_id: str
    kind: str  # "modify" | "read"
    submitted_at: float
    committed_at: Optional[float] = None
    failed_at: Optional[float] = None
    failure_reason: Optional[str] = None
    retries: int = 0

    @property
    def latency(self) -> Optional[float]:
        if self.committed_at is None:
            return None
        return self.committed_at - self.submitted_at

    @property
    def succeeded(self) -> bool:
        return self.committed_at is not None


class TransactionRecorder:
    """Collects per-transaction outcomes and per-phase durations."""

    def __init__(self) -> None:
        self.records: Dict[str, TransactionRecord] = {}
        # phase name -> list of durations (seconds); feeds Table 3.
        self.phase_durations: Dict[str, List[float]] = defaultdict(list)

    # -- transaction lifecycle ---------------------------------------

    def submitted(self, transaction_id: str, client_id: str, kind: str, now: float) -> None:
        self.records[transaction_id] = TransactionRecord(
            transaction_id=transaction_id, client_id=client_id, kind=kind, submitted_at=now
        )

    def committed(self, transaction_id: str, now: float) -> None:
        record = self.records.get(transaction_id)
        if record is not None and record.committed_at is None:
            record.committed_at = now

    def failed(self, transaction_id: str, now: float, reason: str) -> None:
        record = self.records.get(transaction_id)
        if record is not None and record.committed_at is None and record.failed_at is None:
            record.failed_at = now
            record.failure_reason = reason

    def retried(self, transaction_id: str) -> None:
        record = self.records.get(transaction_id)
        if record is not None:
            record.retries += 1

    # -- phase breakdown (Table 3) --------------------------------------

    def phase(self, name: str, duration: float) -> None:
        self.phase_durations[name].append(duration)

    # -- views -------------------------------------------------------------

    def successes(self, kind: Optional[str] = None) -> List[TransactionRecord]:
        return [
            r
            for r in self.records.values()
            if r.succeeded and (kind is None or r.kind == kind)
        ]

    def failures(self, kind: Optional[str] = None) -> List[TransactionRecord]:
        return [
            r
            for r in self.records.values()
            if r.failed_at is not None and (kind is None or r.kind == kind)
        ]

    def latencies(self, kind: Optional[str] = None) -> List[float]:
        return [r.latency for r in self.successes(kind) if r.latency is not None]

    def mean_phase(self, name: str) -> float:
        durations = self.phase_durations.get(name, [])
        if not durations:
            return 0.0
        return sum(durations) / len(durations)


__all__ = ["TransactionRecord", "TransactionRecorder"]
