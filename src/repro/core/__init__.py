"""OrderlessChain core: the BFT coordination-free two-phase
execute-commit protocol (Section 4), organizations, clients, smart
contracts, endorsement policies, and Byzantine behaviours.
"""

from repro.core.byzantine import ByzantineClientConfig, ByzantineOrgConfig
from repro.core.client import Client, ClientConfig
from repro.core.contract import ContractContext, SmartContract
from repro.core.organization import Organization
from repro.core.perf import PerfModel
from repro.core.policy import EndorsementPolicy
from repro.core.recording import TransactionRecorder
from repro.core.system import OrderlessChainNetwork, OrderlessChainSettings
from repro.core.transaction import (
    Endorsement,
    Proposal,
    Receipt,
    Transaction,
)

__all__ = [
    "ByzantineClientConfig",
    "ByzantineOrgConfig",
    "Client",
    "ClientConfig",
    "ContractContext",
    "Endorsement",
    "EndorsementPolicy",
    "OrderlessChainNetwork",
    "OrderlessChainSettings",
    "Organization",
    "PerfModel",
    "Proposal",
    "Receipt",
    "SmartContract",
    "Transaction",
    "TransactionRecorder",
]
