"""Endorsement policies (Section 3).

An endorsement policy ``EP: {q of n}`` requires ``q`` of the network's
``n`` organizations to endorse *and* commit each transaction. For up to
``f`` Byzantine organizations the application is safe iff ``q >= f+1``
and live iff ``n - q >= f`` (Theorem 8.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping

from repro.errors import PolicyError


@dataclass(frozen=True)
class EndorsementPolicy:
    """``q of n``: the trust requirement of an application."""

    quorum: int
    total: int

    def __post_init__(self) -> None:
        if not 0 < self.quorum <= self.total:
            raise PolicyError(
                f"endorsement policy needs 0 < q <= n, got q={self.quorum}, n={self.total}"
            )

    def __str__(self) -> str:
        return f"{{{self.quorum} of {self.total}}}"

    # -- Theorem 8.1 -----------------------------------------------------

    @property
    def safety_tolerance(self) -> int:
        """Maximum Byzantine organizations under which safety holds (q-1)."""
        return self.quorum - 1

    @property
    def liveness_tolerance(self) -> int:
        """Maximum Byzantine organizations under which liveness holds (n-q)."""
        return self.total - self.quorum

    def is_safe_under(self, faulty: int) -> bool:
        """Safety holds iff ``q >= f + 1``."""
        return self.quorum >= faulty + 1

    def is_live_under(self, faulty: int) -> bool:
        """Liveness holds iff ``n - q >= f``."""
        return self.total - self.quorum >= faulty

    # -- checks used by the protocol --------------------------------------

    def satisfied_by(self, endorsement_count: int) -> bool:
        """Whether a set of (distinct, valid) endorsements meets the policy."""
        return endorsement_count >= self.quorum

    def partition_available(self, partition_size: int) -> bool:
        """CAP discussion (Section 3): a partition stays available iff it
        contains at least ``q`` organizations."""
        return partition_size >= self.quorum

    def to_wire(self) -> Dict[str, Any]:
        return {"quorum": self.quorum, "total": self.total}

    @classmethod
    def from_wire(cls, wire: Mapping[str, Any]) -> "EndorsementPolicy":
        return cls(quorum=int(wire["quorum"]), total=int(wire["total"]))


__all__ = ["EndorsementPolicy"]
