"""Receipt-based ledger auditing.

Section 4: "As the receipt contains the hash of the block, which is
dependent on the hash of previous blocks in the log, the organization
cannot modify the content of the transaction without destroying and
invalidating RCPT_i of TS_i and other transactions. The client can
archive the transaction's receipts for bookkeeping purposes."

This module implements the client-side half of that argument: given an
archived receipt and (read) access to the organization's ledger, an
auditor can verify that the block the receipt names is still intact —
any retroactive tampering at that organization is detected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.transaction import Receipt
from repro.crypto.identity import CertificateAuthority
from repro.ledger.ledger import Ledger


@dataclass(frozen=True)
class AuditFinding:
    """Outcome of auditing one receipt against one ledger."""

    receipt_valid: bool
    block_found: bool
    chain_intact: bool
    detail: str = ""

    @property
    def clean(self) -> bool:
        return self.receipt_valid and self.block_found and self.chain_intact


def audit_receipt(receipt: Receipt, ledger: Ledger, ca: CertificateAuthority) -> AuditFinding:
    """Check an archived receipt against an organization's ledger.

    Three things must hold:

    1. the receipt's signature verifies (it really came from the
       organization, about this transaction and block hash);
    2. a block with exactly the receipted hash exists in the ledger's
       log — recomputed from the block's current content, so any
       payload tampering changes the hash and the block "disappears";
    3. the hash chain verifies end to end (tampering with *earlier*
       blocks is caught even when the receipted block itself is
       untouched).
    """
    payload = Receipt.signed_payload(receipt.transaction_id, receipt.block_hash, receipt.valid)
    receipt_valid = ca.verify(receipt.org_id, payload, receipt.signature)
    if not receipt_valid:
        return AuditFinding(False, False, False, "receipt signature does not verify")
    block_found = any(block.block_hash == receipt.block_hash for block in ledger.log)
    try:
        ledger.verify_integrity()
        chain_intact = True
        chain_detail = ""
    except Exception as exc:  # LedgerError: report what broke
        chain_intact = False
        chain_detail = str(exc)
    if not block_found:
        return AuditFinding(
            True,
            False,
            chain_intact,
            "no block with the receipted hash exists (payload tampered or block dropped)",
        )
    return AuditFinding(True, True, chain_intact, chain_detail)


__all__ = ["AuditFinding", "audit_receipt"]
