"""DDoS detection: rate-limiting and revoking abusive clients.

Section 8, client fault 1: "A Byzantine client may send proposals to
the organizations without sending the transaction to be committed ...
it can be used for DDoS attacks. As only authenticated clients can
communicate with the organizations, OrderlessChain can employ existing
DDoS attack detection mechanisms to revoke Byzantine clients'
permissions."

:class:`ProposalRateGuard` is such a mechanism: a sliding-window rate
detector per client. Two escalation levels:

* above ``max_rate`` proposals/second the organization *drops* the
  client's proposals (local back-pressure);
* a client that stays abusive for ``strikes`` consecutive windows is
  reported to the certificate authority for revocation — after which
  every organization ignores it (the CA is the membership service, so
  revocation is network-wide).
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Deque, Dict

from repro.core.organization import Organization
from repro.core.transaction import Proposal


class ProposalRateGuard:
    """Sliding-window per-client proposal rate limiting with revocation."""

    def __init__(
        self,
        org: Organization,
        max_rate: float = 50.0,
        window: float = 1.0,
        strikes: int = 3,
        revoke: bool = True,
    ) -> None:
        if max_rate <= 0 or window <= 0 or strikes < 1:
            raise ValueError("max_rate and window must be positive, strikes >= 1")
        self.org = org
        self.max_rate = max_rate
        self.window = window
        self.strikes = strikes
        self.revoke = revoke
        self._arrivals: Dict[str, Deque[float]] = defaultdict(deque)
        self._strike_count: Dict[str, int] = defaultdict(int)
        self._last_strike_window: Dict[str, int] = {}
        self.dropped: Dict[str, int] = defaultdict(int)
        self.revoked: set[str] = set()
        org.proposal_guards.append(self._check)

    @property
    def _limit(self) -> int:
        return max(1, int(self.max_rate * self.window))

    def _check(self, proposal: Proposal) -> bool:
        client_id = proposal.client_id
        now = self.org.sim.now
        arrivals = self._arrivals[client_id]
        cutoff = now - self.window
        while arrivals and arrivals[0] < cutoff:
            arrivals.popleft()
        arrivals.append(now)
        if len(arrivals) <= self._limit:
            return True
        # Over the limit: drop, and count one strike per window.
        self.dropped[client_id] += 1
        window_index = int(now / self.window)
        if self._last_strike_window.get(client_id) != window_index:
            self._last_strike_window[client_id] = window_index
            self._strike_count[client_id] += 1
            if (
                self.revoke
                and self._strike_count[client_id] >= self.strikes
                and client_id not in self.revoked
                and not self.org.ca.is_revoked(client_id)
            ):
                self.org.ca.revoke(client_id)
                self.revoked.add(client_id)
        return False


def install_rate_guards(network, **kwargs) -> Dict[str, ProposalRateGuard]:
    """Install a rate guard on every organization of a network."""
    return {
        org.org_id: ProposalRateGuard(org, **kwargs) for org in network.organizations
    }


__all__ = ["ProposalRateGuard", "install_rate_guards"]
