"""Knobs for the adaptive resilience layer (docs/RESILIENCE.md)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class ResilienceConfig:
    """Adaptive timeout, hedging, and circuit-breaker parameters.

    Attach to :class:`repro.core.client.ClientConfig` via its
    ``resilience`` field; ``None`` (the default) keeps the legacy
    fixed-timeout client untouched.
    """

    # -- RTT estimation and adaptive deadlines -------------------------
    # Deadline = clamp(srtt + rttvar_mult * rttvar) * backoff^attempt,
    # capped, plus uniform jitter in [0, jitter * deadline).
    initial_timeout: float = 1.0  # before any RTT sample lands
    min_timeout: float = 0.2
    max_timeout: float = 8.0
    rttvar_mult: float = 4.0  # Jacobson/Karels' K
    backoff_factor: float = 2.0
    backoff_cap: float = 8.0  # max multiplier over the base deadline
    jitter: float = 0.1  # fraction of the deadline, seeded-RNG drawn

    # -- hedged endorsement solicitation -------------------------------
    # Contact q + hedge organizations in phase 1 (still need only q
    # matching endorsements), so one slow/crashed org cannot stall the
    # attempt. Retries re-target previously unused organizations first.
    hedge: int = 1

    # -- per-organization circuit breaker ------------------------------
    breaker_threshold: int = 3  # consecutive failures to open
    breaker_cooldown: float = 10.0  # open -> half-open after this long
    breaker_probes: int = 1  # concurrent trial requests in half-open

    def __post_init__(self) -> None:
        if self.min_timeout <= 0 or self.max_timeout < self.min_timeout:
            raise ConfigError(
                f"need 0 < min_timeout <= max_timeout, got "
                f"[{self.min_timeout}, {self.max_timeout}]"
            )
        if not self.min_timeout <= self.initial_timeout <= self.max_timeout:
            raise ConfigError(
                f"initial_timeout {self.initial_timeout} outside "
                f"[{self.min_timeout}, {self.max_timeout}]"
            )
        if self.backoff_factor < 1.0 or self.backoff_cap < 1.0:
            raise ConfigError("backoff factor and cap must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigError(f"jitter must be in [0, 1), got {self.jitter}")
        if self.hedge < 0:
            raise ConfigError(f"hedge must be >= 0, got {self.hedge}")
        if self.breaker_threshold < 1 or self.breaker_probes < 1:
            raise ConfigError("breaker threshold and probes must be >= 1")
        if self.breaker_cooldown < 0:
            raise ConfigError(f"breaker cooldown must be >= 0, got {self.breaker_cooldown}")

    @property
    def worst_case_timeout(self) -> float:
        """Upper bound on any single adaptive deadline (jitter included)."""
        return self.max_timeout * (1.0 + self.jitter)


__all__ = ["ResilienceConfig"]
