"""Per-organization circuit breaker: closed -> open -> half-open.

Generalizes the client's permanent ``blacklist`` (Figure 8(b)'s
avoidance) into a *recoverable* health model: an organization that
stops answering (crashed, partitioned away, Byzantine-dropping) is
opened after ``breaker_threshold`` consecutive failures and skipped by
organization selection; after ``breaker_cooldown`` simulated seconds
the breaker admits ``breaker_probes`` trial requests (half-open), and
one success closes it again — so organizations that heal after a
partition get traffic back instead of being shunned forever.

The breaker is pure bookkeeping: no randomness, no event scheduling;
state transitions are driven by the client's own observations. An
optional transition callback lets the observability layer record
``breaker/transition`` instants without changing behavior.
"""

from __future__ import annotations

from typing import Callable, Optional

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"

# on_transition(org_id, old_state, new_state) -> None
TransitionHook = Callable[[str, str, str], None]


class CircuitBreaker:
    """Health state for one client's view of one organization."""

    def __init__(
        self,
        org_id: str,
        threshold: int,
        cooldown: float,
        probes: int = 1,
        clock: Optional[Callable[[], float]] = None,
        on_transition: Optional[TransitionHook] = None,
    ) -> None:
        self.org_id = org_id
        self.threshold = max(1, threshold)
        self.cooldown = cooldown
        self.probes = max(1, probes)
        self._clock = clock or (lambda: 0.0)
        self._on_transition = on_transition
        self.state = BREAKER_CLOSED
        self.consecutive_failures = 0
        self.opened_at: Optional[float] = None
        self._probes_in_flight = 0

    def _transition(self, new_state: str) -> None:
        if new_state == self.state:
            return
        old_state, self.state = self.state, new_state
        if self._on_transition is not None:
            self._on_transition(self.org_id, old_state, new_state)

    # -- selection-side API --------------------------------------------

    def allows_request(self) -> bool:
        """May the client target this organization right now?

        Open breakers reject until the cooldown elapses, then move to
        half-open and admit up to ``probes`` concurrent trial requests.
        """
        if self.state == BREAKER_CLOSED:
            return True
        if self.state == BREAKER_OPEN:
            if self.opened_at is not None and self._clock() - self.opened_at >= self.cooldown:
                self._transition(BREAKER_HALF_OPEN)
                self._probes_in_flight = 0
            else:
                return False
        # Half-open: admit a bounded number of probes.
        return self._probes_in_flight < self.probes

    def record_sent(self) -> None:
        """The client targeted this organization (counts half-open probes)."""
        if self.state == BREAKER_HALF_OPEN:
            self._probes_in_flight += 1

    # -- outcome-side API ----------------------------------------------

    def record_success(self) -> None:
        """A response arrived; the organization is healthy again."""
        self.consecutive_failures = 0
        self._probes_in_flight = 0
        self.opened_at = None
        self._transition(BREAKER_CLOSED)

    def record_failure(self) -> None:
        """A request to this organization timed out (or disagreed)."""
        if self.state == BREAKER_HALF_OPEN:
            # A failed probe re-opens immediately and restarts cooldown.
            self.opened_at = self._clock()
            self._probes_in_flight = 0
            self._transition(BREAKER_OPEN)
            return
        self.consecutive_failures += 1
        if self.state == BREAKER_CLOSED and self.consecutive_failures >= self.threshold:
            self.opened_at = self._clock()
            self._transition(BREAKER_OPEN)


__all__ = ["CircuitBreaker", "BREAKER_CLOSED", "BREAKER_OPEN", "BREAKER_HALF_OPEN"]
