"""Adaptive resilience: RTT-aware timeouts, hedging, circuit breakers.

The layer generalizes the client's fixed timeouts and permanent
blacklist into an adaptive health model (docs/RESILIENCE.md):

* :class:`RttEstimator` — Jacobson/Karels EWMA of round-trip times
  (srtt/rttvar) turning observed endorsement/receipt latencies into
  per-attempt deadlines with capped exponential backoff and
  seeded-RNG jitter;
* :class:`CircuitBreaker` — per-organization closed → open →
  half-open health tracking, so organizations that heal after a crash
  or partition get traffic back (unlike the permanent ``blacklist``);
* :class:`ResilienceConfig` — the knobs, carried on
  :class:`repro.core.client.ClientConfig` (``resilience=None`` keeps
  the legacy fixed-timeout behavior, byte-identical event order).

Everything here is deterministic: the only randomness is the jitter
drawn from a named ``sim.rng`` stream owned by the caller, so
golden-seed fingerprints stay stable (docs/FAULTS.md).
"""

from repro.resilience.breaker import BREAKER_CLOSED, BREAKER_HALF_OPEN, BREAKER_OPEN, CircuitBreaker
from repro.resilience.config import ResilienceConfig
from repro.resilience.rtt import RttEstimator

__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "CircuitBreaker",
    "ResilienceConfig",
    "RttEstimator",
]
