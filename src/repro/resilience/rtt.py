"""Deterministic RTT estimation and adaptive deadlines.

The classic Jacobson/Karels estimator (as used by TCP's RTO): an EWMA
of the smoothed round-trip time (``srtt``) and its mean deviation
(``rttvar``), turned into a deadline ``srtt + K * rttvar`` with capped
exponential backoff across retry attempts. Berger et al.'s BFT
simulation studies show realistic timeout modeling is what makes
simulated fault numbers transfer; fixed 3-second timeouts either burn
seconds per crashed organization or fire spuriously under load.

Jitter decorrelates retries across clients (so a timed-out cohort does
not re-solicit in lockstep) and is drawn from the seeded RNG stream
the caller passes in — the estimator itself holds no randomness.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.resilience.config import ResilienceConfig


class RttEstimator:
    """EWMA srtt/rttvar over observed round-trips -> per-attempt deadlines."""

    # TCP's standard gains: alpha = 1/8 for srtt, beta = 1/4 for rttvar.
    ALPHA = 0.125
    BETA = 0.25

    def __init__(self, config: ResilienceConfig) -> None:
        self.config = config
        self.srtt: Optional[float] = None
        self.rttvar: float = 0.0
        self.samples = 0

    def observe(self, rtt: float) -> None:
        """Feed one measured round-trip (request send to response arrival)."""
        if rtt < 0:
            return
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2.0
        else:
            self.rttvar = (1 - self.BETA) * self.rttvar + self.BETA * abs(self.srtt - rtt)
            self.srtt = (1 - self.ALPHA) * self.srtt + self.ALPHA * rtt
        self.samples += 1

    def base_deadline(self) -> float:
        """The attempt-0 deadline: clamp(srtt + K * rttvar)."""
        cfg = self.config
        if self.srtt is None:
            return cfg.initial_timeout
        raw = self.srtt + cfg.rttvar_mult * self.rttvar
        return min(cfg.max_timeout, max(cfg.min_timeout, raw))

    def timeout_for(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        """Deadline for retry ``attempt`` (0-based), backoff and jitter applied.

        Always <= ``config.worst_case_timeout`` so the liveness oracle
        can bound how long a transaction may legitimately stay pending.
        """
        cfg = self.config
        backoff = min(cfg.backoff_factor ** attempt, cfg.backoff_cap)
        deadline = min(cfg.max_timeout, self.base_deadline() * backoff)
        if rng is not None and cfg.jitter > 0:
            deadline += deadline * cfg.jitter * rng.random()
        return deadline


__all__ = ["RttEstimator"]
