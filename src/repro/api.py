"""repro.api — the stable public facade.

One import for the four things users actually do, spanning the
subpackages without making callers learn their layout:

* :func:`build_network` — construct a fully wired OrderlessChain
  network (settings, contracts, channels, clients) without running it;
* :func:`run_experiment` — build *any* configured system, drive its
  workload, and measure (:class:`~repro.bench.metrics.ExperimentResult`);
* :func:`explore` — fuzz transaction interleavings and fault schedules
  over the deterministic simulator, oracle-checking every execution;
* :func:`report` — regenerate (or drift-check) the paper's
  figure/table catalog.

The configuration types ride along: :class:`ExperimentConfig` (one
declarative run description; ``channels=(ChannelSpec(...), ...)``
deploys several applications on one network) and
:class:`OrderlessChainSettings` (the constructor-level knobs), with
:meth:`OrderlessChainSettings.from_config` as the single canonical
conversion between them (see docs/API.md).

Everything exported here is covered by the public-API surface snapshot
test (``tests/bench/test_api_surface.py``): adding a name is a
deliberate snapshot update, removing or renaming one fails tier-1.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.bench.config import ChannelSpec, ExperimentConfig
from repro.bench.metrics import ExperimentResult
from repro.bench.runner import build_network, run_experiment
from repro.core.system import OrderlessChainNetwork, OrderlessChainSettings
from repro.explore import ExploreOutcome, explore


def report(
    figures: Optional[Sequence[str]] = None,
    jobs: Optional[int] = None,
    quick: bool = False,
    check: bool = False,
    echo: Any = print,
    **kwargs: Any,
) -> "Any":
    """Regenerate (or, with ``check=True``, drift-check) the catalog.

    A thin wrapper over :func:`repro.report.pipeline.run_report` that
    keeps the report machinery out of import-time dependencies; extra
    keyword arguments (``experiments_md``, ``cache_dir``, ...) pass
    through. Returns the pipeline's ``ReportOutcome`` — inspect
    ``exit_code`` (non-zero on drift or failed runs) and ``runs``.
    """
    from repro.report.pipeline import run_report

    return run_report(
        figures=figures, jobs=jobs, quick=quick, check=check, echo=echo, **kwargs
    )


__all__ = [
    "ChannelSpec",
    "ExperimentConfig",
    "ExperimentResult",
    "ExploreOutcome",
    "OrderlessChainNetwork",
    "OrderlessChainSettings",
    "build_network",
    "explore",
    "report",
    "run_experiment",
]
