"""E6 — Figure 7: average latency vs throughput for 16/24/32 orgs.

Paper claim: "we also compared the average latency to throughput for
an increasing number of organizations and arrival rates and observed
that OrderlessChain scales" — the latency-throughput curves stay low
and flat for all three network sizes.

Grid, prose, and shape checks live in the experiment catalog
(``repro.report.catalog``).
"""


def test_fig7_latency_vs_throughput(run_spec):
    run_spec("fig7")
