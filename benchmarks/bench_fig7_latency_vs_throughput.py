"""E6 — Figure 7: average latency vs throughput for 16/24/32 orgs.

Paper claim: "we also compared the average latency to throughput for
an increasing number of organizations and arrival rates and observed
that OrderlessChain scales" — the latency-throughput curves stay low
and flat for all three network sizes.
"""

from repro.bench.experiments import fig7_latency_vs_throughput
from repro.bench.reporting import format_comparison


def test_fig7_latency_vs_throughput(benchmark, bench_duration, bench_jobs, emit_report):
    series = benchmark.pedantic(
        lambda: fig7_latency_vs_throughput(
            duration=bench_duration, jobs=bench_jobs, rates=[1000, 3000, 5000, 8000, 10000]
        ),
        rounds=1,
        iterations=1,
    )
    emit_report(
        format_comparison("Figure 7: latency vs throughput (16/24/32 orgs)", "rate", series)
    )
    for name, points in series.items():
        throughputs = [r.throughput_tps for _, r in points]
        latencies = [r.latency_modify.avg_ms for _, r in points]
        # Throughput scales with offered load for every network size...
        assert throughputs[-1] > 3 * throughputs[0], name
        # ...and average latency stays in the sub-second regime.
        assert max(latencies) < 1500, name
