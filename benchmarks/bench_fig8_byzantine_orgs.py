"""E7 — Figure 8: throughput under escalating Byzantine organizations.

Figure 8(a): with f:1 -> f:2 -> f:3 Byzantine organizations (windows at
the paper's 30/70/110/150 s marks, rescaled), committed throughput
drops with every escalation and recovers when the faults clear; the
paper notes latency is unaffected.

Figure 8(b): when clients observe and avoid Byzantine organizations,
throughput returns to its pre-failure value.
"""

from repro.bench.experiments import fig8_byzantine_orgs
from repro.bench.reporting import format_timeline


def _mean_tps(timeline, start, end):
    values = [tps for t, tps in timeline if start <= t < end]
    return sum(values) / max(1, len(values))


def test_fig8a_byzantine_orgs_without_avoidance(benchmark, bench_duration, emit_report):
    duration = max(60.0, 4 * bench_duration)
    result = benchmark.pedantic(
        lambda: fig8_byzantine_orgs(avoidance=False, duration=duration),
        rounds=1,
        iterations=1,
    )
    emit_report(format_timeline("Figure 8(a): Byzantine orgs, no avoidance", result))

    marks = [duration * f for f in (30 / 180, 110 / 180, 150 / 180)]
    healthy = _mean_tps(result.timeline, 0, marks[0])
    worst = _mean_tps(result.timeline, marks[1], marks[2])  # the f:3 window
    recovered = _mean_tps(result.timeline, marks[2], duration)
    # Throughput decreases with Byzantine failures and recovers at f:0.
    assert worst < 0.9 * healthy
    assert recovered > 0.9 * healthy
    assert result.failed > 0


def test_fig8b_byzantine_orgs_with_avoidance(benchmark, bench_duration, emit_report):
    duration = max(60.0, 4 * bench_duration)
    result = benchmark.pedantic(
        lambda: fig8_byzantine_orgs(avoidance=True, duration=duration),
        rounds=1,
        iterations=1,
    )
    emit_report(format_timeline("Figure 8(b): Byzantine orgs, clients avoid", result))

    marks = [duration * f for f in (30 / 180, 150 / 180)]
    healthy = _mean_tps(result.timeline, 0, marks[0])
    byzantine_era = _mean_tps(result.timeline, marks[0], marks[1])
    # With avoidance the throughput stays near its pre-failure value.
    assert byzantine_era > 0.85 * healthy
