"""E7 — Figure 8: throughput under escalating Byzantine organizations.

Figure 8(a): with f:1 -> f:2 -> f:3 Byzantine organizations (windows at
the paper's 30/70/110/150 s marks, rescaled), committed throughput
drops with every escalation and recovers when the faults clear; the
paper notes latency is unaffected.

Figure 8(b): when clients observe and avoid Byzantine organizations,
throughput returns to its pre-failure value.

Timelines need enough simulated time for the fault windows to show, so
these runs stretch the bench duration to at least 60 s. Grid, prose,
and shape checks live in the experiment catalog (``repro.report.catalog``).
"""


def test_fig8a_byzantine_orgs_without_avoidance(run_spec, bench_duration):
    run_spec("fig8a", duration=max(60.0, 4 * bench_duration))


def test_fig8b_byzantine_orgs_with_avoidance(run_spec, bench_duration):
    run_spec("fig8b", duration=max(60.0, 4 * bench_duration))
