"""E2 — Figure 6(b): synthetic application, organization sweep.

Paper claim: "the system scales for increasing organizations without
affecting the throughput and latency" (EP {4 of n}).
"""

from repro.bench.experiments import fig6b_organizations
from repro.bench.reporting import format_sweep


def test_fig6b_organizations(benchmark, bench_duration, bench_jobs, emit_report):
    results = benchmark.pedantic(
        lambda: fig6b_organizations(duration=bench_duration, jobs=bench_jobs), rounds=1, iterations=1
    )
    emit_report(format_sweep("Figure 6(b): number of organizations", "orgs", results))

    throughputs = [r.throughput_tps for _, r in results]
    latencies = [r.latency_modify.avg_ms for _, r in results]
    # Flat throughput and latency from 8 to 32 organizations.
    assert max(throughputs) < 1.2 * min(throughputs)
    assert max(latencies) < 1.5 * min(latencies)
