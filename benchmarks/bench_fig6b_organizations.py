"""E2 — Figure 6(b): synthetic application, organization sweep.

Paper claim: "the system scales for increasing organizations without
affecting the throughput and latency" (EP {4 of n}).

Grid, prose, and shape checks live in the experiment catalog
(``repro.report.catalog``).
"""


def test_fig6b_organizations(run_spec):
    run_spec("fig6b")
