"""E9 — Figure 9(a)/(c): voting vs Fabric and FabricCRDT.

Paper claims (8 orgs, EP {4 of 8}, 500-2500 tps): OrderlessChain shows
higher throughput for the voting application; Fabric's modify
throughput collapses under MVCC-validation failures; Fabric's latency
explodes as its ordering service saturates; FabricCRDT's CRDT merge is
a bottleneck; OrderlessChain's latency remains constant.
"""

from repro.bench.experiments import fig9_comparison
from repro.bench.reporting import format_comparison


def test_fig9_voting(benchmark, bench_duration, bench_jobs, emit_report):
    series = benchmark.pedantic(
        lambda: fig9_comparison("voting", duration=bench_duration, jobs=bench_jobs), rounds=1, iterations=1
    )
    emit_report(format_comparison("Figure 9(a)/(c): voting application", "rate", series))

    orderless = series["orderlesschain"]
    fabric = series["fabric"]
    fabriccrdt = series["fabriccrdt"]

    # OrderlessChain commits more modify transactions at the top rate.
    top = -1
    assert (
        orderless[top][1].throughput_modify_tps > 3 * fabric[top][1].throughput_modify_tps
    )
    assert (
        orderless[top][1].throughput_modify_tps > 1.5 * fabriccrdt[top][1].throughput_modify_tps
    )
    # Fabric fails most contended votes (the paper's up-to-90% figure).
    fabric_top = fabric[top][1]
    assert fabric_top.failure_reasons.get("mvcc conflict", 0) > fabric_top.committed / 4
    # OrderlessChain's latency stays flat; Fabric's explodes.
    orderless_lats = [r.latency_modify.avg_ms for _, r in orderless]
    assert max(orderless_lats) < 2.5 * min(orderless_lats)
    assert fabric[top][1].latency_modify.avg_ms > 4 * fabric[0][1].latency_modify.avg_ms
    # FabricCRDT's merge cost drives latency far above OrderlessChain.
    assert fabriccrdt[top][1].latency_modify.avg_ms > 4 * orderless[top][1].latency_modify.avg_ms
