"""E9 — Figure 9(a)/(c): voting vs Fabric and FabricCRDT.

Paper claims (8 orgs, EP {4 of 8}, 500-2500 tps): OrderlessChain shows
higher throughput for the voting application; Fabric's modify
throughput collapses under MVCC-validation failures; Fabric's latency
explodes as its ordering service saturates; FabricCRDT's CRDT merge is
a bottleneck; OrderlessChain's latency remains constant.

Grid, prose, and shape checks live in the experiment catalog
(``repro.report.catalog``).
"""


def test_fig9_voting(run_spec):
    run_spec("fig9-voting")
