"""E11 — Figure 10(a)/(c): voting vs BIDL and Sync HotStuff.

Paper claims (16 orgs, 500-4000 tps): both BIDL and Sync HotStuff
scale better than Fabric/FabricCRDT, but OrderlessChain still shows
higher throughput; BIDL's sequencer/consensus becomes a WAN bottleneck
and its latency jumps at the top rates; Sync HotStuff's leader is the
bottleneck; OrderlessChain's latency stays constant.

Grid, prose, and shape checks live in the experiment catalog
(``repro.report.catalog``).
"""


def test_fig10_voting(run_spec):
    run_spec("fig10-voting")
