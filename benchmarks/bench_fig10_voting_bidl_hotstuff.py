"""E11 — Figure 10(a)/(c): voting vs BIDL and Sync HotStuff.

Paper claims (16 orgs, 500-4000 tps): both BIDL and Sync HotStuff
scale better than Fabric/FabricCRDT, but OrderlessChain still shows
higher throughput; BIDL's sequencer/consensus becomes a WAN bottleneck
and its latency jumps at the top rates; Sync HotStuff's leader is the
bottleneck; OrderlessChain's latency stays constant.
"""

from repro.bench.experiments import fig10_comparison
from repro.bench.reporting import format_comparison


def test_fig10_voting(benchmark, bench_duration, bench_jobs, emit_report):
    series = benchmark.pedantic(
        lambda: fig10_comparison("voting", duration=bench_duration, jobs=bench_jobs), rounds=1, iterations=1
    )
    emit_report(format_comparison("Figure 10(a)/(c): voting application", "rate", series))

    orderless = series["orderlesschain"]
    bidl = series["bidl"]
    hotstuff = series["synchotstuff"]
    top = -1

    # OrderlessChain's latency stays flat across the whole sweep.
    orderless_lats = [r.latency_modify.avg_ms for _, r in orderless]
    assert max(orderless_lats) < 2.5 * min(orderless_lats)
    # BIDL and Sync HotStuff blow up at their consensus knees.
    assert bidl[top][1].latency_modify.avg_ms > 2.5 * bidl[0][1].latency_modify.avg_ms
    assert hotstuff[top][1].latency_modify.avg_ms > 2.5 * hotstuff[0][1].latency_modify.avg_ms
    # OrderlessChain keeps up with the offered load at the top rate.
    assert (
        orderless[top][1].throughput_modify_tps
        >= max(bidl[top][1].throughput_modify_tps, hotstuff[top][1].throughput_modify_tps)
    )
