"""E13 — Table 3: breakdown of average transaction processing time.

Paper's anchor points (voting application): OrderlessChain P1 64 ms /
P2 110 ms at 2500 tps; Fabric's consensus ~17 s at 2500 tps; BIDL's
sequence 346 ms / consensus ~6.8 s at 4000 tps; Sync HotStuff's
consensus ~5.5 s / commit 6 ms at 4000 tps. The defining *shape*:
coordination (consensus/ordering) dominates end-to-end time on every
coordination-based system, while OrderlessChain's two phases are both
small and of the same order.
"""

from repro.bench.experiments import table3_breakdown
from repro.bench.reporting import format_breakdown


def test_table3_breakdown(benchmark, bench_duration, bench_jobs, emit_report):
    rows = benchmark.pedantic(
        lambda: table3_breakdown(duration=bench_duration, jobs=bench_jobs), rounds=1, iterations=1
    )
    for system, phases in rows.items():
        emit_report(format_breakdown(f"Table 3 - {system}", phases))

    orderless = rows["orderlesschain"]
    fabric = rows["fabric"]
    bidl = rows["bidl"]
    hotstuff = rows["synchotstuff"]

    # OrderlessChain: both phases are small (well under a second).
    assert orderless["orderlesschain/P1/Execution"] < 500
    assert orderless["orderlesschain/P2/Commit"] < 500
    # Fabric: consensus dwarfs endorsement and commit by >10x.
    assert fabric["fabric/P2/Consensus"] > 10 * fabric["fabric/P1/Endorse"]
    assert fabric["fabric/P2/Consensus"] > 10 * fabric["fabric/P3/Commit"]
    # Fabric's consensus dwarfs OrderlessChain's entire pipeline.
    orderless_total = (
        orderless["orderlesschain/P1/Execution"] + orderless["orderlesschain/P2/Commit"]
    )
    assert fabric["fabric/P2/Consensus"] > 10 * orderless_total
    # BIDL: consensus dominates sequencing and execution.
    assert bidl["bidl/P2/Consensus"] > bidl["bidl/P1/Sequence"]
    assert bidl["bidl/P2/Consensus"] > bidl["bidl/P3/Execution"]
    # Sync HotStuff: consensus dominates commit by orders of magnitude.
    assert hotstuff["hotstuff/P1/Consensus"] > 10 * hotstuff["hotstuff/P2/Commit"]


def test_resource_utilization_comparison(benchmark, bench_duration, bench_jobs, emit_report):
    """Section 9 text: OrderlessChain organizations utilize more CPU
    than Fabric organizations at the same load (paper: ~50 % vs ~30 %
    at 2500 tps voting), attributed to applying CRDT operations to the
    cache; the serialized cache section bounds the extra utilization."""
    from repro.bench.experiments import resource_utilization_comparison

    utilizations = benchmark.pedantic(
        lambda: resource_utilization_comparison(duration=bench_duration, jobs=bench_jobs),
        rounds=1,
        iterations=1,
    )
    lines = ["== CPU utilization at 2500 tps (voting) =="]
    for system, utilization in utilizations.items():
        lines.append(f"  {system:<16} {100 * utilization:5.1f} %")
    emit_report("\n".join(lines))
    assert utilizations["orderlesschain"] > 1.3 * utilizations["fabric"]
    assert utilizations["orderlesschain"] < 0.9  # bounded, not saturated
