"""E13 — Table 3: breakdown of average transaction processing time.

Paper's anchor points (voting application): OrderlessChain P1 64 ms /
P2 110 ms at 2500 tps; Fabric's consensus ~17 s at 2500 tps; BIDL's
sequence 346 ms / consensus ~6.8 s at 4000 tps; Sync HotStuff's
consensus ~5.5 s / commit 6 ms at 4000 tps. The defining *shape*:
coordination (consensus/ordering) dominates end-to-end time on every
coordination-based system, while OrderlessChain's two phases are both
small and of the same order.

Prose and shape checks live in the experiment catalog
(``repro.report.catalog``).
"""


def test_table3_breakdown(run_spec):
    run_spec("table3")


def test_resource_utilization_comparison(run_spec):
    """Section 9 text: OrderlessChain organizations utilize more CPU
    than Fabric organizations at the same load (paper: ~50 % vs ~30 %
    at 2500 tps voting), attributed to applying CRDT operations to the
    cache; the serialized cache section bounds the extra utilization."""
    run_spec("resource-util")
