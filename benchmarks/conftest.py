"""Shared benchmark configuration.

Each benchmark regenerates one of the paper's tables or figures and
prints the rows/series it plots. Runs use the utilization-preserving
scale-down (``REPRO_BENCH_SCALE``, default 20; see DESIGN.md) and a
reduced duration (``REPRO_BENCH_DURATION``, default 15 simulated
seconds vs the paper's 180), so the full suite completes on a laptop.

Set ``REPRO_BENCH_SCALE=1 REPRO_BENCH_DURATION=180`` for paper scale.

Sweep-based benchmarks fan their experiment points over
``REPRO_BENCH_JOBS`` worker processes (default 1 = serial; results are
identical either way — see docs/PERFORMANCE.md).
"""

import os
import sys

import pytest

# Make the printed figures visible in the benchmark run's output.
_REPORT_LINES = []


def emit(text: str) -> None:
    """Print a figure block and remember it for the final summary."""
    print("\n" + text, flush=True)
    _REPORT_LINES.append(text)


@pytest.fixture
def bench_duration() -> float:
    return float(os.environ.get("REPRO_BENCH_DURATION", "15"))


@pytest.fixture
def bench_jobs() -> int:
    from repro.bench.parallel import default_jobs

    return default_jobs()


@pytest.fixture
def emit_report():
    return emit


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if _REPORT_LINES:
        terminalreporter.section("reproduced figures and tables")
        for block in _REPORT_LINES:
            terminalreporter.write_line(block)
            terminalreporter.write_line("")
