"""Shared benchmark configuration.

Each benchmark regenerates one of the paper's tables or figures and
prints the rows/series it plots. Runs use the utilization-preserving
scale-down (``REPRO_BENCH_SCALE``, default 20; see DESIGN.md) and a
reduced duration (``REPRO_BENCH_DURATION``, default 15 simulated
seconds vs the paper's 180), so the full suite completes on a laptop.

Set ``REPRO_BENCH_SCALE=1 REPRO_BENCH_DURATION=180`` for paper scale.

Sweep-based benchmarks fan their experiment points over
``REPRO_BENCH_JOBS`` worker processes (default 1 = serial; results are
identical either way — see docs/PERFORMANCE.md).
"""

import os
import sys

import pytest

# Make the printed figures visible in the benchmark run's output.
_REPORT_LINES = []


def emit(text: str) -> None:
    """Print a figure block and remember it for the final summary."""
    print("\n" + text, flush=True)
    _REPORT_LINES.append(text)


@pytest.fixture
def bench_duration() -> float:
    return float(os.environ.get("REPRO_BENCH_DURATION", "15"))


@pytest.fixture
def bench_jobs() -> int:
    from repro.bench.parallel import default_jobs

    return default_jobs()


@pytest.fixture
def emit_report():
    return emit


@pytest.fixture
def run_spec(benchmark, bench_duration, bench_jobs, emit_report):
    """Run one catalog experiment the way ``repro report`` would.

    Benchmarks are thin shells over the spec catalog
    (``repro.report.catalog``): the fixture runs the spec's full grid
    at the bench duration, prints its markdown table, and asserts the
    spec's registered shape checks — the same checks that decide the
    generated EXPERIMENTS.md verdicts.
    """
    from repro.report import assert_records, get_spec
    from repro.report.render import render_table

    def run(spec_id: str, duration: float = None, **extra_overrides):
        spec = get_spec(spec_id)
        overrides = {"duration": bench_duration if duration is None else duration}
        overrides.update(extra_overrides)
        records = benchmark.pedantic(
            lambda: spec.run(jobs=bench_jobs, overrides=overrides),
            rounds=1,
            iterations=1,
        )
        emit_report(f"== {spec.section_title} ==\n\n" + render_table(spec, records))
        assert_records(spec, records, overrides=overrides)
        return records

    return run


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if _REPORT_LINES:
        terminalreporter.section("reproduced figures and tables")
        for block in _REPORT_LINES:
            terminalreporter.write_line(block)
            terminalreporter.write_line("")
