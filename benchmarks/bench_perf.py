"""Perf microbenchmark harness — tracks the repo's events/sec trajectory.

Run directly to measure the hot paths and update ``BENCH_perf.json``::

    PYTHONPATH=src python benchmarks/bench_perf.py
    PYTHONPATH=src python benchmarks/bench_perf.py --smoke   # fast check

The first run against a missing report records itself as the baseline;
later runs keep that baseline and report per-workload speedups (see
docs/PERFORMANCE.md). The logic lives in :mod:`repro.bench.perfbench`
so the tier-1 ``perf_smoke`` test can exercise it without this script.
"""

import sys

from repro.bench.perfbench import main

if __name__ == "__main__":
    sys.exit(main())
