"""Observability smoke test: export a trace and validate it end to end.

Runs one small traced experiment per system, writes the Chrome trace
JSON, validates it against the documented schema
(docs/OBSERVABILITY.md / ``repro.obs.schema``), and regenerates the
Table-3-style phase breakdown from the *exported file* — proving the
trace artifact alone carries the paper's breakdown.
"""

import pytest

from repro.bench.config import ExperimentConfig
from repro.bench.metrics import summarize_samples
from repro.bench.reporting import format_breakdown, format_node_metrics
from repro.bench.runner import run_experiment
from repro.obs.chrome import load_chrome_trace, phase_means_from_trace, write_chrome_trace
from repro.obs.schema import validate_chrome_trace, validate_collector

SYSTEM_PHASE = {
    "orderlesschain": "orderlesschain/P1/Execution",
    "fabric": "fabric/P2/Consensus",
    "fabriccrdt": "fabriccrdt/P1/Endorse",
    "bidl": "bidl/P2/Consensus",
    "synchotstuff": "hotstuff/P1/Consensus",
}


@pytest.mark.parametrize("system", sorted(SYSTEM_PHASE))
def test_traced_run_exports_valid_schema(system, tmp_path, benchmark, emit_report):
    config = ExperimentConfig(
        system=system,
        app="voting",
        arrival_rate=1500.0,
        num_orgs=8,
        quorum=4,
        duration=5.0,
        seed=0,
        trace=True,
        sample_interval=0.5,
    )
    result = benchmark.pedantic(lambda: run_experiment(config), rounds=1, iterations=1)
    collector = result.observability.trace
    assert collector.spans, "traced run produced no spans"
    assert validate_collector(collector) == []

    path = tmp_path / f"trace_{system}.json"
    payload = write_chrome_trace(collector, str(path))
    assert validate_chrome_trace(payload) == []

    # The Table-3-style breakdown must regenerate from the file alone.
    means = phase_means_from_trace(load_chrome_trace(str(path)))
    assert means
    assert SYSTEM_PHASE[system] in means
    assert all(mean >= 0 for mean in means.values())

    series = summarize_samples(collector)
    assert series, "sampler recorded no node time-series"
    emit_report(
        format_breakdown(f"smoke trace breakdown - {system}", means)
        + "\n\n"
        + format_node_metrics(f"node metrics - {system}", series)
    )
