"""E1 — Figure 6(a): synthetic application, arrival-rate sweep.

Paper claim: "the throughput increases with an increasing transaction
arrival rate, but the latency rises."
"""

from repro.bench.experiments import fig6a_arrival_rate
from repro.bench.reporting import format_sweep


def test_fig6a_arrival_rate(benchmark, bench_duration, bench_jobs, emit_report):
    results = benchmark.pedantic(
        lambda: fig6a_arrival_rate(duration=bench_duration, jobs=bench_jobs), rounds=1, iterations=1
    )
    emit_report(format_sweep("Figure 6(a): transaction arrival rate", "rate", results))

    rates = [rate for rate, _ in results]
    throughputs = [r.throughput_tps for _, r in results]
    latencies = [r.latency_modify.avg_ms for _, r in results]
    # Throughput tracks the arrival rate across the sweep...
    assert throughputs[-1] > 2.5 * throughputs[0]
    assert throughputs[-1] > 0.6 * rates[-1]
    # ...while latency rises with load.
    assert latencies[-1] > latencies[0]
