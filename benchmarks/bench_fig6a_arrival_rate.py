"""E1 — Figure 6(a): synthetic application, arrival-rate sweep.

Paper claim: "the throughput increases with an increasing transaction
arrival rate, but the latency rises."

Grid, prose, and shape checks live in the experiment catalog
(``repro.report.catalog``); ``python -m repro report`` regenerates the
matching EXPERIMENTS.md section from the same definitions.
"""


def test_fig6a_arrival_rate(run_spec):
    run_spec("fig6a")
