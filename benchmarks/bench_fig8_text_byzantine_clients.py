"""E8 — Section 9's Byzantine-client experiments (Table 2 rows 11-12).

Paper claims: with non-faulty organizations and 50/75/100 % Byzantine
clients, "all faulty transactions are rejected while the latency is
unaffected, showing the system stays safe and live"; combining three
Byzantine organizations with Byzantine clients decreases throughput
without affecting latency.
"""

import math

from repro.bench.experiments import fig8_text_byzantine_clients
from repro.bench.reporting import format_sweep


def test_byzantine_clients_only(benchmark, bench_duration, bench_jobs, emit_report):
    results = benchmark.pedantic(
        lambda: fig8_text_byzantine_clients(duration=bench_duration, jobs=bench_jobs),
        rounds=1,
        iterations=1,
    )
    emit_report(format_sweep("Byzantine clients (orgs honest)", "frac", results))
    for fraction, result in results:
        # Every Byzantine transaction fails (safety holds)...
        assert result.failed > 0
        # ...and honest clients' latency stays in the normal band.
        if fraction != "100%":
            assert result.committed > 0
            assert result.latency_modify.avg_ms < 1000


def test_byzantine_clients_and_orgs_combined(benchmark, bench_duration, bench_jobs, emit_report):
    results = benchmark.pedantic(
        lambda: fig8_text_byzantine_clients(
            duration=bench_duration, jobs=bench_jobs, with_byzantine_orgs=True, fractions=[0.5]
        ),
        rounds=1,
        iterations=1,
    )
    emit_report(format_sweep("Byzantine clients + 3 Byzantine orgs", "frac", results))
    _, result = results[0]
    # Throughput decreases but the system stays safe and live: honest
    # transactions still commit, faulty ones are rejected/fail.
    assert result.committed > 0
    assert result.failed > 0
