"""E8 — Section 9's Byzantine-client experiments (Table 2 rows 11-12).

Paper claims: with non-faulty organizations and 50/75/100 % Byzantine
clients, "all faulty transactions are rejected while the latency is
unaffected, showing the system stays safe and live"; combining three
Byzantine organizations with Byzantine clients decreases throughput
without affecting latency.

Grids, prose, and shape checks live in the experiment catalog
(``repro.report.catalog``, group ``fig8text``).
"""


def test_byzantine_clients_only(run_spec):
    run_spec("fig8t-clients")


def test_byzantine_clients_and_orgs_combined(run_spec):
    run_spec("fig8t-combined")
