"""E12 — Figure 10(b)/(d): auction vs BIDL and Sync HotStuff.

Grid, prose, and shape checks live in the experiment catalog
(``repro.report.catalog``).
"""


def test_fig10_auction(run_spec):
    run_spec("fig10-auction")
