"""E12 — Figure 10(b)/(d): auction vs BIDL and Sync HotStuff."""

from repro.bench.experiments import fig10_comparison
from repro.bench.reporting import format_comparison


def test_fig10_auction(benchmark, bench_duration, bench_jobs, emit_report):
    series = benchmark.pedantic(
        lambda: fig10_comparison("auction", duration=bench_duration, jobs=bench_jobs), rounds=1, iterations=1
    )
    emit_report(format_comparison("Figure 10(b)/(d): auction application", "rate", series))

    orderless = series["orderlesschain"]
    bidl = series["bidl"]
    hotstuff = series["synchotstuff"]
    top = -1

    orderless_lats = [r.latency_modify.avg_ms for _, r in orderless]
    assert max(orderless_lats) < 2.5 * min(orderless_lats)
    assert bidl[top][1].latency_modify.avg_ms > 2.5 * bidl[0][1].latency_modify.avg_ms
    assert hotstuff[top][1].latency_modify.avg_ms > 2.5 * hotstuff[0][1].latency_modify.avg_ms
    assert (
        orderless[top][1].throughput_modify_tps
        >= max(bidl[top][1].throughput_modify_tps, hotstuff[top][1].throughput_modify_tps)
    )
