"""E10 — Figure 9(b)/(d): auction vs Fabric and FabricCRDT.

Same grid as E9 on the auction application: contended highest-bid keys
fail MVCC on Fabric, FabricCRDT merges grow, OrderlessChain stays flat.
"""

from repro.bench.experiments import fig9_comparison
from repro.bench.reporting import format_comparison


def test_fig9_auction(benchmark, bench_duration, bench_jobs, emit_report):
    series = benchmark.pedantic(
        lambda: fig9_comparison("auction", duration=bench_duration, jobs=bench_jobs), rounds=1, iterations=1
    )
    emit_report(format_comparison("Figure 9(b)/(d): auction application", "rate", series))

    orderless = series["orderlesschain"]
    fabric = series["fabric"]
    fabriccrdt = series["fabriccrdt"]
    top = -1

    assert (
        orderless[top][1].throughput_modify_tps > 3 * fabric[top][1].throughput_modify_tps
    )
    assert fabric[top][1].failure_reasons.get("mvcc conflict", 0) > 0
    orderless_lats = [r.latency_modify.avg_ms for _, r in orderless]
    assert max(orderless_lats) < 2.5 * min(orderless_lats)
    assert fabric[top][1].latency_modify.avg_ms > 4 * fabric[0][1].latency_modify.avg_ms
    assert fabriccrdt[top][1].latency_modify.avg_ms > 4 * orderless[top][1].latency_modify.avg_ms
