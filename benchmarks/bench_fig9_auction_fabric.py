"""E10 — Figure 9(b)/(d): auction vs Fabric and FabricCRDT.

Same grid as E9 on the auction application: contended highest-bid keys
fail MVCC on Fabric, FabricCRDT merges grow, OrderlessChain stays flat.

Grid, prose, and shape checks live in the experiment catalog
(``repro.report.catalog``).
"""


def test_fig9_auction(run_spec):
    run_spec("fig9-auction")
