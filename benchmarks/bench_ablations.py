"""E15 — Ablations of DESIGN.md's design choices.

1. CRDT value cache (Section 6's optimization): disabling it makes
   every read replay the object's operations from the database — read
   latency grows with ledger size, which is "a well-known problem of
   CRDTs" the cache exists to solve.
2. Gossip interval: the paper gossips every second; longer intervals
   slow full dissemination but leave client-visible latency unchanged
   (commits need only q organizations).
"""

from repro.bench.experiments import ablation_cache, ablation_gossip_interval
from repro.bench.reporting import format_sweep


def test_ablation_cache(benchmark, bench_duration, bench_jobs, emit_report):
    results = benchmark.pedantic(
        lambda: ablation_cache(duration=bench_duration, jobs=bench_jobs), rounds=1, iterations=1
    )
    emit_report(format_sweep("Ablation: CRDT value cache", "cache", results))
    by_label = dict(results)
    # Without the cache, reads replay the log: read latency rises.
    assert (
        by_label["cache off"].latency_read.avg_ms > 1.2 * by_label["cache on"].latency_read.avg_ms
    )


def test_ablation_gossip_interval(benchmark, bench_duration, bench_jobs, emit_report):
    results = benchmark.pedantic(
        lambda: ablation_gossip_interval(duration=bench_duration, jobs=bench_jobs), rounds=1, iterations=1
    )
    emit_report(format_sweep("Ablation: gossip interval", "period", results))
    latencies = [r.latency_modify.avg_ms for _, r in results]
    # Client-visible latency is gossip-independent (commits need only
    # the q organizations the client contacts directly).
    assert max(latencies) < 1.5 * min(latencies)


def test_ablation_fabric_orderer(benchmark, bench_duration, bench_jobs, emit_report):
    from repro.bench.experiments import ablation_fabric_orderer

    results = benchmark.pedantic(
        lambda: ablation_fabric_orderer(duration=bench_duration), rounds=1, iterations=1
    )
    emit_report(format_sweep("Ablation: Fabric ordering service", "orderer", results))
    by_label = dict(results)
    # Raft replication adds roughly a WAN round trip per block.
    assert (
        by_label["raft"].latency_modify.avg_ms
        > by_label["solo"].latency_modify.avg_ms + 50
    )
