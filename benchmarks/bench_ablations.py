"""E15 — Ablations of DESIGN.md's design choices.

1. CRDT value cache (Section 6's optimization): disabling it makes
   every read replay the object's operations from the database — read
   latency grows with ledger size, which is "a well-known problem of
   CRDTs" the cache exists to solve.
2. Gossip interval: the paper gossips every second; longer intervals
   slow full dissemination but leave client-visible latency unchanged
   (commits need only q organizations).
3. Fabric ordering service: Raft replication adds roughly a WAN round
   trip of follower acknowledgement per block vs Solo.

Grids, prose, and shape checks live in the experiment catalog
(``repro.report.catalog``, group ``ablations``).
"""


def test_ablation_cache(run_spec):
    run_spec("abl-cache")


def test_ablation_gossip_interval(run_spec):
    run_spec("abl-gossip")


def test_ablation_fabric_orderer(run_spec):
    run_spec("abl-orderer")
