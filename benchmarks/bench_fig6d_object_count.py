"""E4 — Figure 6(d): synthetic application, objects-per-transaction sweep.

Paper claim: "the latency increases for a larger number of objects in
the transaction due to the locking mechanism used in the cache to
avoid concurrent reads and writes."
"""

from repro.bench.experiments import fig6d_object_count
from repro.bench.reporting import format_sweep


def test_fig6d_object_count(benchmark, bench_duration, bench_jobs, emit_report):
    results = benchmark.pedantic(
        lambda: fig6d_object_count(duration=bench_duration, jobs=bench_jobs), rounds=1, iterations=1
    )
    emit_report(format_sweep("Figure 6(d): objects per transaction", "objects", results))

    latencies = [r.latency_modify.avg_ms for _, r in results]
    # Cache-lock contention: modify latency grows with object count.
    assert latencies[-1] > 1.5 * latencies[0]
