"""E4 — Figure 6(d): synthetic application, objects-per-transaction sweep.

Paper claim: "the latency increases for a larger number of objects in
the transaction due to the locking mechanism used in the cache to
avoid concurrent reads and writes."

Grid, prose, and shape checks live in the experiment catalog
(``repro.report.catalog``).
"""


def test_fig6d_object_count(run_spec):
    run_spec("fig6d")
