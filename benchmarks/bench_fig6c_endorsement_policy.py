"""E3 — Figure 6(c): synthetic application, endorsement-policy sweep.

Paper claim: "with an increasing number of organizations required by
the endorsement policy, we observe that the latency increases as the
load on the organization increases" — and throughput degrades at the
largest quorums.
"""

from repro.bench.experiments import fig6c_endorsement_policy
from repro.bench.reporting import format_sweep


def test_fig6c_endorsement_policy(benchmark, bench_duration, bench_jobs, emit_report):
    results = benchmark.pedantic(
        lambda: fig6c_endorsement_policy(duration=bench_duration, jobs=bench_jobs), rounds=1, iterations=1
    )
    emit_report(format_sweep("Figure 6(c): endorsement policy {q of 16}", "EP", results))

    latencies = [r.latency_modify.avg_ms for _, r in results]
    throughputs = [r.throughput_tps for _, r in results]
    # Latency at {16 of 16} far exceeds {2 of 16}; throughput degrades.
    assert latencies[-1] > 2.0 * latencies[0]
    assert throughputs[-1] < 0.95 * throughputs[0]
