"""E3 — Figure 6(c): synthetic application, endorsement-policy sweep.

Paper claim: "with an increasing number of organizations required by
the endorsement policy, we observe that the latency increases as the
load on the organization increases" — and throughput degrades at the
largest quorums.

Grid, prose, and shape checks live in the experiment catalog
(``repro.report.catalog``).
"""


def test_fig6c_endorsement_policy(run_spec):
    run_spec("fig6c")
