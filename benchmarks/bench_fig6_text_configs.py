"""E5 — Section 9's text-reported configurations 5-9.

Paper claims: throughput and latency are unaffected by the number of
operations per object, independent of CRDT type, unaffected by the
read/modify mix, essentially unchanged under a normally distributed
load (except slightly higher latency at hot organizations), and
insensitive to the gossip ratio.

Grids, prose, and shape checks live in the experiment catalog
(``repro.report.catalog``, group ``fig6text``).
"""


def test_config5_ops_per_object(run_spec):
    run_spec("fig6t-ops")


def test_config6_crdt_type(run_spec):
    run_spec("fig6t-crdt")


def test_config7_workload_mix(run_spec):
    run_spec("fig6t-mix")


def test_config8_workload_skew(run_spec):
    run_spec("fig6t-skew")


def test_config9_gossip_ratio(run_spec):
    run_spec("fig6t-gossip")
