"""E5 — Section 9's text-reported configurations 5-9.

Paper claims: throughput and latency are unaffected by the number of
operations per object, independent of CRDT type, unaffected by the
read/modify mix, essentially unchanged under a normally distributed
load (except slightly higher latency at hot organizations), and
insensitive to the gossip ratio.
"""

from repro.bench.experiments import (
    text_config_crdt_type,
    text_config_gossip_ratio,
    text_config_ops_per_object,
    text_config_workload_mix,
    text_config_workload_skew,
)
from repro.bench.reporting import format_sweep


def _flat(latencies, tolerance):
    return max(latencies) < tolerance * min(latencies)


def test_config5_ops_per_object(benchmark, bench_duration, bench_jobs, emit_report):
    results = benchmark.pedantic(
        lambda: text_config_ops_per_object(duration=bench_duration, jobs=bench_jobs), rounds=1, iterations=1
    )
    emit_report(format_sweep("Config 5: operations per object", "ops", results))
    assert _flat([r.latency_modify.avg_ms for _, r in results], 1.6)


def test_config6_crdt_type(benchmark, bench_duration, bench_jobs, emit_report):
    results = benchmark.pedantic(
        lambda: text_config_crdt_type(duration=bench_duration, jobs=bench_jobs), rounds=1, iterations=1
    )
    emit_report(format_sweep("Config 6: CRDT type", "type", results))
    assert _flat([r.latency_modify.avg_ms for _, r in results], 1.5)
    assert _flat([r.throughput_tps for _, r in results], 1.2)


def test_config7_workload_mix(benchmark, bench_duration, bench_jobs, emit_report):
    results = benchmark.pedantic(
        lambda: text_config_workload_mix(duration=bench_duration, jobs=bench_jobs), rounds=1, iterations=1
    )
    emit_report(format_sweep("Config 7: read/modify mix", "mix", results))
    assert _flat([r.throughput_tps for _, r in results], 1.25)


def test_config8_workload_skew(benchmark, bench_duration, bench_jobs, emit_report):
    results = benchmark.pedantic(
        lambda: text_config_workload_skew(duration=bench_duration, jobs=bench_jobs), rounds=1, iterations=1
    )
    emit_report(format_sweep("Config 8: load distribution per org", "dist", results))
    latencies = [r.latency_modify.avg_ms for _, r in results]
    # No significant difference between uniform and skewed load.
    assert _flat(latencies, 1.5)


def test_config9_gossip_ratio(benchmark, bench_duration, bench_jobs, emit_report):
    results = benchmark.pedantic(
        lambda: text_config_gossip_ratio(duration=bench_duration, jobs=bench_jobs), rounds=1, iterations=1
    )
    emit_report(format_sweep("Config 9: gossip ratio", "fanout", results))
    assert _flat([r.latency_modify.avg_ms for _, r in results], 1.5)
    assert _flat([r.throughput_tps for _, r in results], 1.2)
